//! End-to-end daemon behaviour: results match a direct in-process
//! run byte-for-byte, the compile cache hits on repeat kernels, a
//! full queue rejects with a typed error, and drain refuses new work
//! while finishing what was accepted.

use std::thread;
use std::time::{Duration, Instant};

use rfv_bench::harness::machine_config;
use rfv_sim::SlicedSim;
use rfvd::cache::compile_flavored;
use rfvd::client::Client;
use rfvd::proto::{ErrorCode, JobRequest, Priority, Response};
use rfvd::server::{serve, ServerConfig, ServerHandle};
use rfvd::spec::JobSpec;
use rfvd::{proto::CacheOutcome, result_stats_json};

fn test_server(jobs: usize, queue_depth: usize) -> ServerHandle {
    serve(ServerConfig {
        jobs,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("bind test server")
}

fn submit_ok(client: &mut Client, req: &JobRequest) -> rfvd::proto::JobResult {
    match client.submit(req) {
        Ok(Response::Result(r)) => r,
        other => panic!("expected a result, got {other:?}"),
    }
}

/// The daemon must report exactly what a direct in-process simulation
/// of the same (spec, machine, sms) reports — same stats-json bytes.
#[test]
fn daemon_results_match_a_direct_run_bytewise() {
    let server = test_server(1, 8);
    let mut c = Client::connect(server.local_addr()).unwrap();
    for (spec, machine) in [
        ("VectorAdd", "full"),
        ("VectorAdd", "conventional"),
        ("synth:regs=20,trips=3,tpc=64,ctas=2,conc=2", "shrink50"),
    ] {
        let got = submit_ok(
            &mut c,
            &JobRequest {
                spec: spec.into(),
                machine: machine.into(),
                num_sms: 1,
                ..JobRequest::default()
            },
        );

        let kernel = JobSpec::parse(spec).unwrap().build_kernel();
        let mut config = machine_config(machine).unwrap();
        config.num_sms = 1;
        let release = config.regfile.policy.uses_release_flags();
        let compiled = compile_flavored(&kernel, release).unwrap();
        let mut sim = SlicedSim::new(&compiled, &config, &[], 0).unwrap();
        while !sim.is_done() {
            sim.advance(u64::MAX).unwrap();
        }
        let run = sim.finish().unwrap();
        let expected = result_stats_json(&run.result, config.num_sms);

        assert_eq!(got.cycles, run.result.cycles, "{spec} on {machine}");
        assert_eq!(
            got.stats_json, expected,
            "{spec} on {machine}: daemon stats diverge from a direct run"
        );
    }
    server.begin_drain();
    server.join();
}

#[test]
fn repeat_kernels_hit_the_cache_and_optouts_bypass_it() {
    let server = test_server(1, 8);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let req = JobRequest {
        spec: "synth:regs=16,trips=2,tpc=64,ctas=1,conc=1".into(),
        num_sms: 1,
        ..JobRequest::default()
    };
    let first = submit_ok(&mut c, &req);
    let second = submit_ok(&mut c, &req);
    let third = submit_ok(
        &mut c,
        &JobRequest {
            use_cache: false,
            ..req.clone()
        },
    );
    assert_eq!(first.cache, CacheOutcome::Miss);
    assert_eq!(second.cache, CacheOutcome::Hit);
    assert_eq!(third.cache, CacheOutcome::Bypass);
    // identical spec => identical results regardless of cache path
    assert_eq!(first.stats_json, second.stats_json);
    assert_eq!(first.stats_json, third.stats_json);

    let stats = {
        let mut s = Client::connect(server.local_addr()).unwrap();
        s.stats().unwrap()
    };
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    server.begin_drain();
    server.join();
}

/// With one runner and a one-slot queue, a third concurrent job must
/// be rejected with `QueueFull` — backpressure is typed, not a hang.
#[test]
fn full_queue_rejects_with_queue_full() {
    let server = test_server(1, 1);
    let addr = server.local_addr();
    let long = JobRequest {
        spec: "synth:regs=24,trips=300,tpc=128,ctas=2,conc=2".into(),
        num_sms: 1,
        ..JobRequest::default()
    };

    // stage saturation deterministically: first job on the runner,
    // second in the single queue slot, and only then the overflow
    let spawn_runner = |req: JobRequest| {
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            submit_ok(&mut c, &req)
        })
    };
    let mut probe = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);

    let first = spawn_runner(long.clone());
    while probe.stats().unwrap().active < 1 {
        assert!(Instant::now() < deadline, "first job never started");
        thread::sleep(Duration::from_millis(1));
    }
    let second = spawn_runner(long.clone());
    while probe.stats().unwrap().queued < 1 {
        assert!(Instant::now() < deadline, "second job never queued");
        thread::sleep(Duration::from_millis(1));
    }

    match probe.submit(&long) {
        Ok(Response::Error(e)) => {
            assert_eq!(e.code, ErrorCode::QueueFull, "{e}");
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    let runners = [first, second];

    // the rejection cost nothing: both accepted jobs still finish
    for r in runners {
        let result = r.join().unwrap();
        assert!(result.cycles > 0);
    }
    let stats = probe.stats().unwrap();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.rejected, 1);
    server.begin_drain();
    server.join();
}

/// High-priority jobs jump the FIFO: with one runner busy and two
/// jobs submitted while it runs, the high one runs first.
#[test]
fn high_priority_jumps_the_queue() {
    let server = test_server(1, 8);
    let addr = server.local_addr();
    let long = JobRequest {
        spec: "synth:regs=24,trips=300,tpc=128,ctas=2,conc=2".into(),
        num_sms: 1,
        ..JobRequest::default()
    };
    let blocker = {
        let req = long.clone();
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            submit_ok(&mut c, &req)
        })
    };
    let mut probe = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while probe.stats().unwrap().active < 1 {
        assert!(Instant::now() < deadline, "blocker never started");
        thread::sleep(Duration::from_millis(2));
    }

    let normal = {
        let req = JobRequest {
            spec: "synth:regs=10,trips=1,tpc=32,ctas=1,conc=1".into(),
            num_sms: 1,
            ..JobRequest::default()
        };
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let t0 = Instant::now();
            let r = submit_ok(&mut c, &req);
            (r, t0.elapsed())
        })
    };
    // give the normal job time to be enqueued ahead of the high one
    let deadline = Instant::now() + Duration::from_secs(10);
    while probe.stats().unwrap().queued < 1 {
        assert!(Instant::now() < deadline, "normal job never queued");
        thread::sleep(Duration::from_millis(2));
    }
    let high = {
        let req = JobRequest {
            spec: "synth:regs=12,trips=1,tpc=32,ctas=1,conc=1".into(),
            num_sms: 1,
            priority: Priority::High,
            ..JobRequest::default()
        };
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let t0 = Instant::now();
            let r = submit_ok(&mut c, &req);
            (r, t0.elapsed())
        })
    };

    let (hr, h_latency) = high.join().unwrap();
    let (nr, n_latency) = normal.join().unwrap();
    let br = blocker.join().unwrap();
    assert!(hr.cycles > 0 && nr.cycles > 0 && br.cycles > 0);
    assert!(
        h_latency < n_latency,
        "high-priority job ({h_latency:?}) should finish before the \
         earlier-submitted normal job ({n_latency:?})"
    );
    server.begin_drain();
    server.join();
}

/// Draining: accepted work finishes, new work is refused (typed
/// `ShuttingDown` when the connection reads the request, or a clean
/// close when the drain wins the race), and `join` returns counters
/// consistent with what clients observed.
#[test]
fn drain_finishes_accepted_work_and_refuses_new() {
    let server = test_server(1, 8);
    let addr = server.local_addr();
    let long = JobRequest {
        spec: "synth:regs=24,trips=300,tpc=128,ctas=2,conc=2".into(),
        num_sms: 1,
        ..JobRequest::default()
    };
    let accepted = {
        let req = long.clone();
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            submit_ok(&mut c, &req)
        })
    };
    let mut probe = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while probe.stats().unwrap().active < 1 {
        assert!(Instant::now() < deadline, "accepted job never started");
        thread::sleep(Duration::from_millis(2));
    }

    server.begin_drain();
    match probe.submit(&long) {
        Ok(Response::Error(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown, "{e}"),
        Err(_) => {} // the conn thread noticed the drain first: clean close
        Ok(other) => panic!("drain accepted new work: {other:?}"),
    }

    let result = accepted.join().unwrap();
    assert!(result.cycles > 0, "accepted job must finish despite drain");
    let final_stats = server.join();
    assert_eq!(final_stats.completed, 1);
    assert_eq!(final_stats.queued, 0);
    assert_eq!(final_stats.active, 0);
}
