//! Resource-bound behaviour end to end: the compile cache respects
//! its configured capacity (evicting LRU, rebuilding byte-identical),
//! and a client with a deadline gets a typed timeout from a stalled
//! daemon instead of hanging forever.

use std::net::TcpListener;
use std::time::Duration;

use rfvd::client::{Client, ClientError};
use rfvd::proto::{CacheOutcome, JobRequest, JobResult, Response};
use rfvd::server::{serve, ServerConfig};

fn submit_ok(client: &mut Client, req: &JobRequest) -> JobResult {
    match client.submit(req) {
        Ok(Response::Result(r)) => r,
        other => panic!("expected a result, got {other:?}"),
    }
}

fn req(spec: &str) -> JobRequest {
    JobRequest {
        spec: spec.into(),
        num_sms: 1,
        ..JobRequest::default()
    }
}

/// With `cache_entries = 2` and three distinct kernels, the cache
/// must stay at two entries, evict in LRU order, and serve a rebuilt
/// (previously evicted) kernel with byte-identical results.
#[test]
fn bounded_cache_evicts_lru_and_rebuilds_byte_identical() {
    let server = serve(ServerConfig {
        jobs: 1,
        queue_depth: 8,
        cache_entries: 2,
        ..ServerConfig::default()
    })
    .expect("bind test server");
    let mut c = Client::connect(server.local_addr()).unwrap();
    let mut probe = Client::connect(server.local_addr()).unwrap();

    let a = req("synth:regs=12,trips=2,tpc=32,ctas=1,conc=1");
    let b = req("synth:regs=16,trips=2,tpc=32,ctas=1,conc=1");
    let d = req("synth:regs=20,trips=2,tpc=32,ctas=1,conc=1");

    let first_a = submit_ok(&mut c, &a);
    assert_eq!(first_a.cache, CacheOutcome::Miss);
    assert_eq!(submit_ok(&mut c, &b).cache, CacheOutcome::Miss);
    // cache now full at [a, b]; a third kernel evicts the LRU (a)
    assert_eq!(submit_ok(&mut c, &d).cache, CacheOutcome::Miss);

    let stats = probe.stats().unwrap();
    assert_eq!(stats.cache_entries, 2, "capacity is a hard bound");
    assert_eq!(stats.cache_evictions, 1);

    // the evicted kernel misses again — and its rebuild is
    // indistinguishable from the original compile
    let again_a = submit_ok(&mut c, &a);
    assert_eq!(again_a.cache, CacheOutcome::Miss, "evicted => recompiled");
    assert_eq!(again_a.stats_json, first_a.stats_json, "rebuild diverged");
    assert_eq!(again_a.cycles, first_a.cycles);
    assert_eq!(again_a.instrs, first_a.instrs);

    // re-inserting a evicted the next LRU (b); d must still be hot
    assert_eq!(submit_ok(&mut c, &d).cache, CacheOutcome::Hit, "LRU order");

    let stats = probe.stats().unwrap();
    assert_eq!(stats.cache_entries, 2);
    assert_eq!(stats.cache_evictions, 2);
    assert_eq!(stats.cache_misses, 4);
    assert_eq!(stats.cache_hits, 1);

    drop(c);
    drop(probe);
    let final_stats = server.join();
    assert_eq!(final_stats.completed, 5);
    assert_eq!(final_stats.failed, 0);
}

/// A daemon that accepts but never answers must cost the client one
/// typed `TimedOut` at its configured deadline — not a forever-hang.
#[test]
fn stalled_daemon_times_out_instead_of_hanging() {
    // a listener that accepts (via the OS backlog) and never responds
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_millis(100))).unwrap();
    let started = std::time::Instant::now();
    match c.submit(&req("synth:regs=10,trips=1,tpc=32,ctas=1,conc=1")) {
        Err(ClientError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout fired far too late"
    );
    drop(listener);
}
