//! Preemption is invisible in results, at both layers:
//!
//! * **library** — a `SlicedSim` driven in ragged slices through a
//!   checkpoint/resume cycle (sharing one predecoded image, as the
//!   daemon's cache does) finishes bit-identical to an uninterrupted
//!   `simulate_traced` run;
//! * **daemon** — a job that was demonstrably preempted by
//!   high-priority traffic returns the same stats-json bytes as the
//!   same job run without interference.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rfv_bench::harness::machine_config;
use rfv_sim::{simulate_traced, PredecodedKernel, SimConfig, SlicedSim};
use rfvd::cache::compile_flavored;
use rfvd::client::Client;
use rfvd::proto::{JobRequest, Priority, Response};
use rfvd::result_stats_json;
use rfvd::server::{serve, ServerConfig};
use rfvd::spec::JobSpec;

#[test]
fn ragged_slices_with_checkpoint_resume_are_bit_identical() {
    let spec = JobSpec::parse("synth:regs=24,trips=40,tpc=128,ctas=4,conc=2,mem=2").unwrap();
    let kernel = spec.build_kernel();
    let config = SimConfig {
        num_sms: 2,
        ..SimConfig::baseline_full()
    };
    let release = config.regfile.policy.uses_release_flags();
    let compiled = compile_flavored(&kernel, release).unwrap();

    let reference = simulate_traced(&compiled, &config, 4096).unwrap();

    // one predecoded image shared across construction, checkpoint,
    // and resume — exactly what the daemon's compile cache does
    let prog = Arc::new(PredecodedKernel::new(&compiled));
    let mut sim =
        SlicedSim::with_predecoded(&compiled, &config, &[], 4096, Arc::clone(&prog)).unwrap();
    for budget in [17, 1, 503, 89, 2311] {
        if sim.is_done() {
            break;
        }
        sim.advance(budget).unwrap();
    }
    // preempt: snapshot, drop the machine, resume from bytes
    let checkpoint = sim.checkpoint();
    drop(sim);
    let mut resumed =
        SlicedSim::resume_with_predecoded(&compiled, &config, &checkpoint, prog).unwrap();
    while !resumed.is_done() {
        resumed.advance(777).unwrap();
    }
    let sliced = resumed.finish().unwrap();

    assert_eq!(sliced.result.cycles, reference.result.cycles);
    assert_eq!(sliced.result.per_sm, reference.result.per_sm);
    assert_eq!(sliced.result.memories, reference.result.memories);
    assert_eq!(sliced.events, reference.events);
}

/// Acceptance: a preempted-then-resumed daemon job reports stats
/// byte-identical to an uninterrupted run of the same job.
#[test]
fn preempted_daemon_job_matches_uninterrupted_run_bytewise() {
    // tiny slices make preemption opportunities frequent
    let server = serve(ServerConfig {
        jobs: 1,
        queue_depth: 8,
        max_cycles_per_slice: 2_000,
        ..ServerConfig::default()
    })
    .expect("bind test server");
    let addr = server.local_addr();

    let victim_spec = "synth:regs=24,trips=300,tpc=128,ctas=2,conc=2";
    let victim = {
        let req = JobRequest {
            spec: victim_spec.into(),
            num_sms: 1,
            ..JobRequest::default()
        };
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            match c.submit(&req) {
                Ok(Response::Result(r)) => r,
                other => panic!("victim job failed: {other:?}"),
            }
        })
    };

    // pummel it with high-priority jobs until it has been preempted
    let mut probe = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while probe.stats().unwrap().active < 1 {
        assert!(Instant::now() < deadline, "victim never started");
        thread::sleep(Duration::from_millis(1));
    }
    let mut high = Client::connect(addr).unwrap();
    let high_req = JobRequest {
        spec: "synth:regs=10,trips=1,tpc=32,ctas=1,conc=1".into(),
        num_sms: 1,
        priority: Priority::High,
        ..JobRequest::default()
    };
    while probe.stats().unwrap().preemptions == 0 {
        assert!(
            Instant::now() < deadline,
            "no preemption observed; is the victim long enough?"
        );
        match high.submit(&high_req) {
            Ok(Response::Result(_)) => {}
            other => panic!("high-priority job failed: {other:?}"),
        }
    }

    let preempted = victim.join().unwrap();
    assert!(
        preempted.preemptions >= 1,
        "the victim should report its preemptions"
    );

    // uninterrupted reference, in process
    let kernel = JobSpec::parse(victim_spec).unwrap().build_kernel();
    let mut config = machine_config("full").unwrap();
    config.num_sms = 1;
    let release = config.regfile.policy.uses_release_flags();
    let compiled = compile_flavored(&kernel, release).unwrap();
    let mut sim = SlicedSim::new(&compiled, &config, &[], 0).unwrap();
    while !sim.is_done() {
        sim.advance(u64::MAX).unwrap();
    }
    let run = sim.finish().unwrap();
    let expected = result_stats_json(&run.result, config.num_sms);

    assert_eq!(preempted.cycles, run.result.cycles);
    assert_eq!(
        preempted.stats_json, expected,
        "a preempted-then-resumed job must be indistinguishable from \
         an uninterrupted one"
    );
    server.begin_drain();
    server.join();
}
