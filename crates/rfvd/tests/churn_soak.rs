//! Connection-churn soak for the multiplexed connection layer.
//!
//! PR 6's daemon spawned (and leaked the `JoinHandle` of) one thread
//! per connection, so a long-lived server serving short-lived clients
//! grew without bound. These tests pin the fix: hundreds of churned
//! and idle connections must leave the daemon's thread count flat,
//! closed connections must be reaped eagerly, and the connection
//! counters in `Stats` must account for all of it.
//!
//! This file deliberately contains a single test: thread-count
//! assertions read `/proc/self/status`, and sibling tests running in
//! the same process would pollute the measurement.

use std::time::{Duration, Instant};

use rfvd::client::Client;
use rfvd::proto::{JobRequest, Response};
use rfvd::server::{serve, ServerConfig};

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("numeric thread count")
}

#[cfg(not(target_os = "linux"))]
fn thread_count() -> usize {
    0 // no /proc: the churn still runs, the flat-count assertion is vacuous
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn connection_churn_and_idle_clients_leave_thread_count_flat() {
    const CHURNED: u64 = 150;
    const IDLE: usize = 100;

    let server = serve(ServerConfig {
        jobs: 2,
        queue_depth: 16,
        ..ServerConfig::default()
    })
    .expect("bind test server");
    let addr = server.local_addr();
    let mut probe = Client::connect(addr).unwrap();
    let baseline = thread_count();

    // churn: every connection submits one tiny job and hangs up
    let tiny = JobRequest {
        spec: "synth:regs=10,trips=1,tpc=32,ctas=1,conc=1".into(),
        num_sms: 1,
        ..JobRequest::default()
    };
    for _ in 0..CHURNED {
        let mut c = Client::connect(addr).unwrap();
        match c.submit(&tiny) {
            Ok(Response::Result(_)) => {}
            other => panic!("churned submit failed: {other:?}"),
        }
    }

    // idle load: connections that send nothing at all
    let idles: Vec<Client> = (0..IDLE).map(|_| Client::connect(addr).unwrap()).collect();
    wait_until("idle connections to register", || {
        probe.stats().unwrap().conns_open == (IDLE + 1) as u64
    });

    assert!(
        thread_count() <= baseline + 4,
        "thread count grew under churn: {baseline} -> {} \
         (connections must multiplex, not spawn threads)",
        thread_count()
    );

    let stats = probe.stats().unwrap();
    assert_eq!(stats.completed, CHURNED);
    assert!(
        stats.conns_total > CHURNED + IDLE as u64,
        "conns_total {} must count every connection ever accepted",
        stats.conns_total
    );

    // eager reaping: closed idles disappear from the open count
    // without any traffic from us
    drop(idles);
    wait_until("closed connections to be reaped", || {
        probe.stats().unwrap().conns_open == 1
    });

    drop(probe);
    let final_stats = server.join();
    assert_eq!(final_stats.completed, CHURNED);
    assert_eq!(final_stats.failed, 0);
}
