//! Restart durability: a daemon SIGKILLed with accepted jobs still
//! queued (or in flight) must, when restarted on the same spool
//! directory, replay and complete every one of them — with results
//! byte-identical to an uninterrupted run. Spool checkpoints are
//! advisory: a corrupted one degrades to a from-scratch rerun, never
//! a failed or lost job.
//!
//! These tests drive the real `rfvd` binary (via `CARGO_BIN_EXE_`),
//! because the property under test is crash recovery of the whole
//! process, not of an in-process handle.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rfvd::client::Client;
use rfvd::proto::{JobRequest, JobResult, Response};

const LONG_SPEC: &str = "synth:regs=24,trips=300,tpc=128,ctas=2,conc=2";
const DEADLINE: Duration = Duration::from_secs(120);

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(spool: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rfvd"))
            .args(["--port", "0", "--jobs", "1", "--spool-dir"])
            .arg(spool)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rfvd");
        // the readiness line is machine-parseable by contract
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read readiness line");
        let addr = line
            .trim()
            .strip_prefix("rfvd listening on ")
            .unwrap_or_else(|| panic!("unexpected readiness line {line:?}"))
            .parse()
            .expect("parse listen address");
        Daemon { child, addr }
    }

    fn kill(mut self) {
        let _ = self.child.kill(); // SIGKILL: no drain, no cleanup
        let _ = self.child.wait();
    }
}

fn long_req() -> JobRequest {
    JobRequest {
        spec: LONG_SPEC.into(),
        num_sms: 1,
        ..JobRequest::default()
    }
}

fn submit_ok(client: &mut Client, req: &JobRequest) -> JobResult {
    match client.submit(req) {
        Ok(Response::Result(r)) => r,
        other => panic!("expected a result, got {other:?}"),
    }
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + DEADLINE;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Record ids present in the spool with the given extension.
fn spool_ids(dir: &Path, ext: &str) -> Vec<u64> {
    let mut ids: Vec<u64> = std::fs::read_dir(dir)
        .expect("read spool dir")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            let stem = name.strip_suffix(ext)?.strip_prefix("job-")?;
            u64::from_str_radix(stem, 16).ok()
        })
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn sigkilled_daemon_replays_every_accepted_job_byte_identically() {
    let spool = std::env::temp_dir().join(format!("rfvd-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);

    // life 1: take a reference result, then pile up jobs and die
    let daemon = Daemon::spawn(&spool);
    let addr = daemon.addr;
    let reference = {
        let mut c = Client::connect(addr).unwrap();
        submit_ok(&mut c, &long_req())
    };

    let submitters: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                // the daemon dies mid-job: any reply (or none) is fine
                let _ = c.submit(&long_req());
            })
        })
        .collect();
    let mut probe = Client::connect(addr).unwrap();
    wait_until("all five jobs accepted", || {
        probe.stats().unwrap().submitted >= 5
    });
    daemon.kill();
    for s in submitters {
        let _ = s.join();
    }

    // the spool must show accepted-but-unfinished work
    let done_before: Vec<u64> = spool_ids(&spool, ".done");
    let unfinished: Vec<u64> = spool_ids(&spool, ".job")
        .into_iter()
        .filter(|id| !done_before.contains(id))
        .collect();
    assert!(
        !unfinished.is_empty(),
        "SIGKILL with queued jobs must leave unfinished spool records"
    );

    // sabotage one record's checkpoint: it must degrade to a rerun,
    // not a failure (checkpoints are advisory)
    let victim = unfinished[0];
    let mut garbage = 1u32.to_le_bytes().to_vec();
    garbage.extend_from_slice(b"not a checkpoint");
    std::fs::write(spool.join(format!("job-{victim:016x}.ckpt")), garbage).unwrap();

    // life 2: same spool, fresh process — every unfinished job runs
    let daemon = Daemon::spawn(&spool);
    let mut probe = Client::connect(daemon.addr).unwrap();
    assert_eq!(
        probe.stats().unwrap().replayed,
        unfinished.len() as u64,
        "every unfinished record is replayed, nothing else"
    );
    let done_paths: Vec<PathBuf> = unfinished
        .iter()
        .map(|id| spool.join(format!("job-{id:016x}.done")))
        .collect();
    wait_until("replayed jobs to finish", || {
        done_paths.iter().all(|p| p.exists())
    });

    // each durable outcome must be the byte-identical success a
    // never-killed daemon would have produced
    for (id, path) in unfinished.iter().zip(&done_paths) {
        let response = Response::decode(&std::fs::read(path).unwrap())
            .unwrap_or_else(|e| panic!("job {id:#x}: undecodable .done record: {e}"));
        match response {
            Response::Result(r) => {
                assert_eq!(
                    r.stats_json, reference.stats_json,
                    "job {id:#x}: replayed stats diverge from the uninterrupted run"
                );
                assert_eq!(r.cycles, reference.cycles, "job {id:#x}");
                assert_eq!(r.instrs, reference.instrs, "job {id:#x}");
            }
            other => panic!("job {id:#x}: replay did not succeed: {other:?}"),
        }
    }
    let stats = probe.stats().unwrap();
    assert_eq!(stats.failed, 0, "no replayed job may fail");
    daemon.kill();

    // life 3: everything is done; a fresh open replays nothing, and
    // the completed pairs are *retained* as idempotency memory (they
    // are what lets a restarted daemon dedupe resubmitted nonces)
    let daemon = Daemon::spawn(&spool);
    let mut probe = Client::connect(daemon.addr).unwrap();
    let stats = probe.stats().unwrap();
    assert_eq!(stats.replayed, 0, "done jobs stay done");
    let jobs = spool_ids(&spool, ".job");
    assert_eq!(
        jobs,
        spool_ids(&spool, ".done"),
        "every retained record is a completed job/done pair"
    );
    assert_eq!(stats.spool_records, jobs.len() as u64);
    daemon.kill();

    let _ = std::fs::remove_dir_all(&spool);
}
