//! Deterministic environment fault injection, exercised end to end
//! against in-process servers: disk brownouts shed normal-priority
//! work and heal, queue brownouts exit with hysteresis, the nonce
//! table dedupes resubmissions (replay and in-flight coalescing),
//! and a [`ResilientClient`] rides out a socket-level fault storm
//! without losing or double-running a single job.

use std::time::{Duration, Instant};

use rfvd::chaos::ChaosPlan;
use rfvd::client::{Client, ResilientClient, RetryPolicy};
use rfvd::proto::{ErrorCode, JobRequest, Priority, Response};
use rfvd::server::{serve, ServerConfig, ServerHandle};

const QUICK_SPEC: &str = "synth:regs=24,trips=2,rep=4";
const LONG_SPEC: &str = "synth:regs=24,trips=300,tpc=128,ctas=2,conc=2";
const DEADLINE: Duration = Duration::from_secs(60);

fn req(spec: &str, priority: Priority) -> JobRequest {
    JobRequest {
        spec: spec.into(),
        num_sms: 1,
        priority,
        ..JobRequest::default()
    }
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + DEADLINE;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn temp_spool(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rfvd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve_with(config: ServerConfig) -> ServerHandle {
    serve(config).expect("serve")
}

#[test]
fn disk_brownout_sheds_normal_keeps_high_and_heals() {
    let spool = temp_spool("disk");
    let handle = serve_with(ServerConfig {
        spool_dir: Some(spool.clone()),
        chaos: ChaosPlan::parse("disk_eio:1.0", 7).unwrap(),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // every journal write fails: normal submissions come back with a
    // typed retry-after carrying a backoff hint, never a hang or a
    // silent accept of non-durable work
    let mut hints = 0;
    for _ in 0..4 {
        match client.submit(&req(QUICK_SPEC, Priority::Normal)).unwrap() {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::RetryAfter, "{e}");
                if e.retry_after_ms.is_some() {
                    hints += 1;
                }
            }
            other => panic!("normal submit during disk failure: {other:?}"),
        }
    }
    assert_eq!(hints, 4, "every retry-after carries a backoff hint");
    let stats = client.stats().unwrap();
    assert_eq!(stats.brownout, 1, "disk brownout is live");
    assert!(stats.brownouts >= 1);
    assert!(stats.shed >= 1, "brownout sheds normal work");

    // high priority still runs (non-durably) through the brownout
    match client.submit(&req(QUICK_SPEC, Priority::High)).unwrap() {
        Response::Result(_) => {}
        other => panic!("high priority must survive the brownout: {other:?}"),
    }

    // the disk "recovers": the mux's probe heals the brownout without
    // any client traffic, and normal submissions flow again
    handle.chaos().set_scale(0.0);
    wait_until("disk brownout to heal", || {
        client.stats().unwrap().brownout == 0
    });
    match client.submit(&req(QUICK_SPEC, Priority::Normal)).unwrap() {
        Response::Result(_) => {}
        other => panic!("healed daemon rejected a normal job: {other:?}"),
    }

    handle.join();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn queue_brownout_enters_on_overflow_and_exits_with_hysteresis() {
    let handle = serve_with(ServerConfig {
        jobs: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // sustained overload: one worker, many submitters refilling the
    // queue faster than it drains
    let runners: Vec<_> = (0..16)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..2 {
                    // any typed outcome is legal under overload; what
                    // is not legal is a hang or an untyped error
                    match c.submit(&req(LONG_SPEC, Priority::Normal)).unwrap() {
                        Response::Result(_) => {}
                        Response::Error(e) => {
                            assert!(
                                matches!(e.code, ErrorCode::QueueFull | ErrorCode::RetryAfter),
                                "overload produced {e}"
                            );
                            assert!(e.retry_after_ms.is_some(), "rejection without a hint: {e}");
                        }
                        other => panic!("overload submit: {other:?}"),
                    }
                }
            })
        })
        .collect();
    let mut client = Client::connect(addr).unwrap();
    wait_until("the queue to overflow", || {
        client.stats().unwrap().brownouts >= 1
    });

    // while the brownout holds, a normal submission is turned away
    // with a typed, hinted rejection — shed before touching the
    // queue, or bounced by the full queue if the brownout flapped
    match client.submit(&req(QUICK_SPEC, Priority::Normal)).unwrap() {
        Response::Error(e) => {
            assert!(
                matches!(e.code, ErrorCode::RetryAfter | ErrorCode::QueueFull),
                "{e}"
            );
            assert!(e.retry_after_ms.is_some(), "rejection without a hint: {e}");
        }
        Response::Result(_) => {
            // the backlog happened to drain past the hysteresis point
            // before our submission arrived — legal, just unlucky
        }
        other => panic!("brownout submit: {other:?}"),
    }
    for r in runners {
        r.join().unwrap();
    }

    // recovery is automatic: with the backlog gone the mux's own tick
    // exits the brownout, no submission required to nudge it
    wait_until("queue brownout to exit", || {
        client.stats().unwrap().brownout == 0
    });
    match client.submit(&req(QUICK_SPEC, Priority::Normal)).unwrap() {
        Response::Result(_) => {}
        other => panic!("post-brownout submit: {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.brownouts >= 1, "the overload tripped the brownout");
    assert!(stats.rejected >= 1, "the overflow itself was typed");
    handle.join();
}

#[test]
fn draining_daemon_rejects_with_a_hinted_shutting_down() {
    let handle = serve_with(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    // keep one job in flight so the drain has something to wait for
    // (a drained-empty daemon closes its connections immediately)
    let runner = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(&req(LONG_SPEC, Priority::Normal)).unwrap()
    });
    let mut client = Client::connect(addr).unwrap();
    wait_until("the long job to start", || {
        client.stats().unwrap().active >= 1
    });
    handle.begin_drain();
    match client.submit(&req(QUICK_SPEC, Priority::Normal)).unwrap() {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::ShuttingDown, "{e}");
            assert!(e.retry_after_ms.is_some(), "drain rejection carries a hint");
        }
        other => panic!("drain submit: {other:?}"),
    }
    match runner.join().unwrap() {
        Response::Result(_) => {}
        other => panic!("in-flight job must finish the drain: {other:?}"),
    }
    handle.join();
}

#[test]
fn duplicate_nonce_replays_the_recorded_reply() {
    let handle = serve_with(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let mut job = req(QUICK_SPEC, Priority::Normal);
    job.nonce = 0x5eed_cafe;
    let first = match client.submit(&job).unwrap() {
        Response::Result(r) => r,
        other => panic!("first submit: {other:?}"),
    };
    // a blind resubmission — even with a *different* spec — replays
    // the recorded reply instead of running anything: the nonce is
    // the job's identity for retry purposes
    let mut dup = req(LONG_SPEC, Priority::Normal);
    dup.nonce = 0x5eed_cafe;
    match client.submit(&dup).unwrap() {
        Response::Result(r) => {
            assert_eq!(r.stats_json, first.stats_json, "replayed verbatim");
            assert_eq!(r.cycles, first.cycles);
        }
        other => panic!("duplicate submit: {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.deduped, 1);
    assert_eq!(stats.completed, 1, "the job ran exactly once");
    handle.join();
}

#[test]
fn inflight_duplicate_attaches_and_both_submitters_get_the_result() {
    let handle = serve_with(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    let mut job = req(LONG_SPEC, Priority::Normal);
    job.nonce = 0xf1a9;

    // two clients race the same nonce; the second attaches to the
    // in-flight job instead of starting a second run
    let submitters: Vec<_> = (0..2)
        .map(|_| {
            let job = job.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.submit(&job).unwrap()
            })
        })
        .collect();
    let mut results = Vec::new();
    for s in submitters {
        match s.join().unwrap() {
            Response::Result(r) => results.push(r),
            other => panic!("racing submit: {other:?}"),
        }
    }
    assert_eq!(results[0].stats_json, results[1].stats_json);
    assert_eq!(results[0].cycles, results[1].cycles);
    let mut probe = Client::connect(addr).unwrap();
    let stats = probe.stats().unwrap();
    assert_eq!(stats.completed, 1, "one run served both submitters");
    assert_eq!(stats.deduped, 1);
    handle.join();
}

#[test]
fn resilient_client_survives_a_socket_fault_storm_without_job_loss() {
    let handle = serve_with(ServerConfig {
        chaos: ChaosPlan::parse("net_reset:0.05,net_short_write:0.2,net_short_read:0.2", 42)
            .unwrap(),
        ..ServerConfig::default()
    });
    let policy = RetryPolicy {
        max_attempts: 40,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
    };
    let mut client = ResilientClient::seeded(
        handle.local_addr().to_string(),
        Some(Duration::from_secs(10)),
        policy,
        9,
    );

    let total = 24;
    let mut reference: Option<String> = None;
    for _ in 0..total {
        match client.submit_idempotent(&req(QUICK_SPEC, Priority::Normal)) {
            Ok(Response::Result(r)) => match &reference {
                Some(json) => assert_eq!(&r.stats_json, json, "results drift under chaos"),
                None => reference = Some(r.stats_json),
            },
            other => panic!("storm submit: {other:?}"),
        }
    }
    let fired = handle.chaos().total_fired();
    assert!(fired > 0, "the storm actually fired ({fired} faults)");

    // quiesce the chaos to read authoritative counters, then check
    // exactly-once: dedupe absorbed every resubmission of a job the
    // daemon had already accepted
    handle.chaos().set_scale(0.0);
    let stats = client.stats().unwrap();
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.completed,
        total,
        "every job ran exactly once no matter how many resubmissions \
         ({} deduped, {} client resets)",
        stats.deduped,
        client.resets()
    );
    handle.join();
}
