//! The chaos soak: a daemon under a seeded, full-spectrum fault
//! storm (disk and network) must complete every accepted job exactly
//! once, with results byte-identical to a fault-free run — across
//! multiple storm seeds, and even when the daemon is SIGKILLed and
//! restarted mid-storm while clients are still retrying.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rfvd::chaos::ChaosPlan;
use rfvd::client::{Client, ResilientClient, RetryPolicy};
use rfvd::proto::{JobRequest, Response};
use rfvd::server::{serve, ServerConfig};

const QUICK_SPEC: &str = "synth:regs=24,trips=2,rep=4";
const STORM: &str = "disk_eio:0.05,disk_torn:0.05,net_reset:0.05,net_short_write:0.2,\
                     net_short_read:0.2,net_accept:0.05,net_stall:0.05";
const DEADLINE: Duration = Duration::from_secs(120);

fn req(spec: &str) -> JobRequest {
    JobRequest {
        spec: spec.into(),
        num_sms: 1,
        ..JobRequest::default()
    }
}

fn storm_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 200,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(100),
    }
}

/// The fault-free reference result every chaos run must reproduce.
fn reference_result() -> rfvd::proto::JobResult {
    let clean = serve(ServerConfig::default()).expect("serve clean");
    let mut c = Client::connect(clean.local_addr()).unwrap();
    let result = match c.submit(&req(QUICK_SPEC)).unwrap() {
        Response::Result(r) => r,
        other => panic!("reference submit: {other:?}"),
    };
    clean.join();
    result
}

#[test]
fn five_seeded_storms_lose_nothing_and_results_never_drift() {
    let reference = reference_result();
    for seed in 1..=5u64 {
        let spool = std::env::temp_dir().join(format!("rfvd-soak-{seed}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&spool);
        let handle = serve(ServerConfig {
            spool_dir: Some(spool.clone()),
            chaos: ChaosPlan::parse(STORM, seed).unwrap(),
            ..ServerConfig::default()
        })
        .expect("serve storm");
        let mut client = ResilientClient::seeded(
            handle.local_addr().to_string(),
            Some(Duration::from_secs(10)),
            storm_policy(),
            seed ^ 0x00c1_1e47,
        );

        let total: u64 = 16;
        for i in 0..total {
            match client.submit_idempotent(&req(QUICK_SPEC)) {
                Ok(Response::Result(r)) => {
                    assert_eq!(
                        r.stats_json, reference.stats_json,
                        "seed {seed}, job {i}: result drifted under chaos"
                    );
                    assert_eq!(r.cycles, reference.cycles, "seed {seed}, job {i}");
                }
                other => panic!("seed {seed}, job {i}: {other:?}"),
            }
        }
        // quiesce, then check exactly-once accounting
        handle.chaos().set_scale(0.0);
        let stats = client.stats().unwrap();
        assert_eq!(stats.failed, 0, "seed {seed}");
        assert_eq!(
            stats.completed,
            total,
            "seed {seed}: each job ran exactly once ({} deduped, {} retries, {} resets)",
            stats.deduped,
            client.retries(),
            client.resets()
        );
        handle.join();
        let _ = std::fs::remove_dir_all(&spool);
    }
}

// ------------------------------------------- real-binary kill storm

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(spool: &Path, port: u16, chaos: Option<(&str, u64)>) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_rfvd"));
        cmd.args(["--port", &port.to_string(), "--jobs", "2", "--spool-dir"])
            .arg(spool);
        if let Some((spec, seed)) = chaos {
            cmd.args(["--chaos", spec, "--chaos-seed", &seed.to_string()]);
        }
        let mut child = cmd
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rfvd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read readiness line");
        let addr = line
            .trim()
            .strip_prefix("rfvd listening on ")
            .unwrap_or_else(|| panic!("unexpected readiness line {line:?}"))
            .parse()
            .expect("parse listen address");
        Daemon { child, addr }
    }

    fn kill(mut self) {
        let _ = self.child.kill(); // SIGKILL: no drain, no cleanup
        let _ = self.child.wait();
    }
}

/// Reserves a port the daemon can be restarted on: clients must be
/// able to keep dialing the *same* address across the kill.
fn pick_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

#[test]
fn sigkill_mid_storm_loses_no_accepted_job() {
    let reference = reference_result();
    let spool = std::env::temp_dir().join(format!("rfvd-soak-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let port = pick_port();

    let daemon = Daemon::spawn(&spool, port, Some((STORM, 11)));
    let addr = daemon.addr;

    // clients submit through the whole ordeal: storm, SIGKILL, the
    // dead window, and the restarted daemon
    let submitters: Vec<_> = (0..3u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = ResilientClient::seeded(
                    addr.to_string(),
                    Some(Duration::from_secs(10)),
                    storm_policy(),
                    0xdead_0000 + t,
                );
                let mut results = Vec::new();
                for _ in 0..4 {
                    results.push(client.submit_idempotent(&req(QUICK_SPEC)));
                }
                results
            })
        })
        .collect();

    // let the storm rage briefly, then SIGKILL mid-flight and restart
    // on the same port and spool — still under chaos
    std::thread::sleep(Duration::from_millis(150));
    daemon.kill();
    let daemon = Daemon::spawn(&spool, port, Some((STORM, 12)));
    assert_eq!(daemon.addr, addr, "restart must reuse the address");

    for (t, s) in submitters.into_iter().enumerate() {
        for (i, outcome) in s.join().unwrap().into_iter().enumerate() {
            match outcome {
                Ok(Response::Result(r)) => {
                    assert_eq!(
                        r.stats_json, reference.stats_json,
                        "thread {t}, job {i}: result drifted across the kill"
                    );
                }
                other => panic!("thread {t}, job {i}: {other:?}"),
            }
        }
    }
    daemon.kill();

    // a final fault-free life heals the spool: torn records are
    // quarantined and their jobs rerun, after which every retained
    // job has a decodable .done twin with the reference result
    let daemon = Daemon::spawn(&spool, port, None);
    let mut probe = Client::connect(daemon.addr).unwrap();
    let deadline = Instant::now() + DEADLINE;
    loop {
        let stats = probe.stats().unwrap();
        if stats.queued == 0 && stats.active == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "final life never settled");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(probe.stats().unwrap().failed, 0, "no replayed job may fail");
    let mut checked = 0;
    for entry in std::fs::read_dir(&spool).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "done") {
            let response = Response::decode(&std::fs::read(&path).unwrap())
                .unwrap_or_else(|e| panic!("{}: undecodable .done: {e}", path.display()));
            match response {
                Response::Result(r) => {
                    assert_eq!(
                        r.stats_json,
                        reference.stats_json,
                        "{}: durable result drifted",
                        path.display()
                    );
                    checked += 1;
                }
                other => panic!("{}: durable failure: {other:?}", path.display()),
            }
        }
    }
    assert!(checked > 0, "the storm left durable completed records");
    daemon.kill();
    let _ = std::fs::remove_dir_all(&spool);
}
