//! Online register-file sanitizer: a shadow model of *architectural
//! intent* checked against the (possibly faulted) hardware structures.
//!
//! The virtualization scheme is only sound if early release never
//! frees a live register and the renaming table, availability
//! vectors, and flag metadata never disagree. The sanitizer maintains
//! an independent shadow map — which architectural register of which
//! warp *should* currently own which physical register — updated only
//! at points of architectural intent (a genuine allocation, a
//! metadata-directed release, a warp retirement). The simulator then
//! asks the sanitizer to compare the hardware's answer against the
//! shadow at every operand read and write.
//!
//! Crucially, injected faults (see `rfv-faults`) perturb the hardware
//! structures *without* updating the shadow, so every divergence the
//! checks report corresponds to a real unsoundness a program could
//! observe.

use std::fmt;

use rfv_isa::{ArchReg, PhysReg, MAX_REGS_PER_THREAD};
use rfv_trace::{Dec, Enc, WireError};

/// Sentinel: no shadow mapping.
const UNMAPPED: u32 = u32::MAX;

/// How much online checking the simulator performs.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub enum SanitizeLevel {
    /// No checking: the shadow model is not even built. Bit-identical
    /// to a simulator without the sanitizer.
    #[default]
    Off,
    /// Detect violations and abort the simulation with a structured
    /// error (no panics).
    Check,
    /// Detect violations, quarantine the offending warp's CTA, and
    /// let the rest of the kernel finish.
    Recover,
}

impl SanitizeLevel {
    /// Whether any checking is active.
    pub fn is_on(self) -> bool {
        self != SanitizeLevel::Off
    }

    /// Stable lower-case label for CLI parsing and run headers.
    pub fn label(self) -> &'static str {
        match self {
            SanitizeLevel::Off => "off",
            SanitizeLevel::Check => "check",
            SanitizeLevel::Recover => "recover",
        }
    }

    /// Parses the spelling produced by [`SanitizeLevel::label`].
    pub fn parse(s: &str) -> Option<SanitizeLevel> {
        [
            SanitizeLevel::Off,
            SanitizeLevel::Check,
            SanitizeLevel::Recover,
        ]
        .into_iter()
        .find(|l| l.label() == s)
    }
}

impl fmt::Display for SanitizeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The class of unsoundness detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// An operand read of a register whose physical backing was
    /// released while the architectural value was still live.
    UseAfterRelease,
    /// The renaming table answers a different physical register than
    /// the architectural intent established (table corruption).
    MappingMismatch,
    /// A freshly allocated physical register is still architecturally
    /// owned by another (warp, register) pair.
    AliasedPhys,
    /// The renaming table maps to a physical register the
    /// availability vector considers free.
    AvailDisagree,
    /// A physical register was freed twice (availability-level
    /// double release).
    DoubleFree,
    /// At warp retirement, a register the metadata released was still
    /// mapped in hardware (a swallowed release).
    DroppedRelease,
    /// Physical registers were still live after the kernel completed.
    RegisterLeak,
    /// A swapped-out register's spill value was lost before swap-in.
    SpillLoss,
}

impl ViolationKind {
    /// Stable lower-case label for error messages and metrics.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::UseAfterRelease => "use_after_release",
            ViolationKind::MappingMismatch => "mapping_mismatch",
            ViolationKind::AliasedPhys => "aliased_phys",
            ViolationKind::AvailDisagree => "avail_disagree",
            ViolationKind::DoubleFree => "double_free",
            ViolationKind::DroppedRelease => "dropped_release",
            ViolationKind::RegisterLeak => "register_leak",
            ViolationKind::SpillLoss => "spill_loss",
        }
    }
}

/// One detected unsoundness, with enough context to debug it from the
/// error alone.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Cycle of detection.
    pub cycle: u64,
    /// Warp slot the violation was detected on (`usize::MAX` for
    /// SM-scoped checks such as the end-of-kernel leak sweep).
    pub warp: usize,
    /// Architectural register involved (`u16::MAX` when not
    /// register-specific).
    pub reg: u16,
    /// Physical register involved (`u32::MAX` when unknown).
    pub phys: u32,
}

impl Violation {
    /// Sentinel warp for SM-scoped violations.
    pub const NO_WARP: usize = usize::MAX;
    /// Sentinel architectural register.
    pub const NO_REG: u16 = u16::MAX;
    /// Sentinel physical register.
    pub const NO_PHYS: u32 = u32::MAX;
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at cycle {}", self.kind.label(), self.cycle)?;
        if self.warp != Violation::NO_WARP {
            write!(f, ", warp slot {}", self.warp)?;
        }
        if self.reg != Violation::NO_REG {
            write!(f, ", r{}", self.reg)?;
        }
        if self.phys != Violation::NO_PHYS {
            write!(f, ", phys {}", self.phys)?;
        }
        Ok(())
    }
}

/// The shadow model plus its checks. One per SM.
#[derive(Clone, Debug)]
pub struct Sanitizer {
    level: SanitizeLevel,
    /// Architectural intent: `shadow[warp][reg]` is the physical
    /// register this name should own ([`UNMAPPED`] when dead).
    shadow: Vec<[u32; MAX_REGS_PER_THREAD]>,
    /// Reverse map: which (warp, reg) architecturally owns a physical
    /// register.
    owner: Vec<Option<(u16, u8)>>,
    detections: u64,
}

impl Sanitizer {
    /// Builds a sanitizer for an SM with `warp_slots` warp contexts
    /// and `phys_regs` physical registers. At `SanitizeLevel::Off`
    /// the shadow structures are left empty and every method is a
    /// cheap no-op.
    pub fn new(level: SanitizeLevel, warp_slots: usize, phys_regs: usize) -> Sanitizer {
        let (shadow, owner) = if level.is_on() {
            (
                vec![[UNMAPPED; MAX_REGS_PER_THREAD]; warp_slots],
                vec![None; phys_regs],
            )
        } else {
            (Vec::new(), Vec::new())
        };
        Sanitizer {
            level,
            shadow,
            owner,
            detections: 0,
        }
    }

    /// The configured level.
    pub fn level(&self) -> SanitizeLevel {
        self.level
    }

    /// Whether checks run at all.
    pub fn enabled(&self) -> bool {
        self.level.is_on()
    }

    /// Violations detected so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    fn detect(&mut self, v: Violation) -> Option<Violation> {
        self.detections += 1;
        Some(v)
    }

    /// Records an intended mapping (fresh allocation at a write,
    /// static launch mapping, or swap-in) and checks that the
    /// physical register is not still architecturally owned
    /// elsewhere. A reported alias identifies the *victim* — the
    /// (warp, register) whose live backing store was stolen — since
    /// that is the state recovery must retire.
    pub fn note_map(
        &mut self,
        warp: usize,
        reg: ArchReg,
        phys: PhysReg,
        cycle: u64,
    ) -> Option<Violation> {
        if !self.enabled() {
            return None;
        }
        // tear down this name's previous ownership (write-after-
        // release reallocation is architecturally a plain rename)
        let old = self.shadow[warp][reg.index()];
        if old != UNMAPPED {
            if let Some(o) = self.owner.get_mut(old as usize) {
                if *o == Some((warp as u16, reg.raw())) {
                    *o = None;
                }
            }
        }
        let p = phys.index();
        let victim = match self.owner.get(p).copied().flatten() {
            Some((w2, r2))
                if (w2 as usize, r2 as usize) != (warp, reg.index())
                    && self.shadow[w2 as usize][r2 as usize] == p as u32 =>
            {
                Some((w2, r2))
            }
            _ => None,
        };
        self.shadow[warp][reg.index()] = p as u32;
        if let Some(o) = self.owner.get_mut(p) {
            *o = Some((warp as u16, reg.raw()));
        }
        if let Some((w2, r2)) = victim {
            return self.detect(Violation {
                kind: ViolationKind::AliasedPhys,
                cycle,
                warp: w2 as usize,
                reg: u16::from(r2),
                phys: p as u32,
            });
        }
        None
    }

    /// Records an intended release (metadata-directed early release,
    /// or a scheduler-driven spill that architecturally parks the
    /// value elsewhere). Idempotent, like the hardware release path.
    pub fn note_release(&mut self, warp: usize, reg: ArchReg) {
        if !self.enabled() {
            return;
        }
        let old = self.shadow[warp][reg.index()];
        if old != UNMAPPED {
            self.shadow[warp][reg.index()] = UNMAPPED;
            if let Some(o) = self.owner.get_mut(old as usize) {
                if *o == Some((warp as u16, reg.raw())) {
                    *o = None;
                }
            }
        }
    }

    /// Drops every shadow mapping of a warp (retirement or
    /// quarantine).
    pub fn note_retire(&mut self, warp: usize) {
        if !self.enabled() {
            return;
        }
        for reg in ArchReg::all() {
            self.note_release(warp, reg);
        }
    }

    /// Checks one operand read: `table` is the renaming answer and
    /// `live` whether that physical register is marked assigned in
    /// the availability vector.
    pub fn check_read(
        &mut self,
        warp: usize,
        reg: ArchReg,
        table: Option<PhysReg>,
        live: bool,
        cycle: u64,
    ) -> Option<Violation> {
        if !self.enabled() {
            return None;
        }
        let shadow = self.shadow[warp][reg.index()];
        let v = |kind, phys| Violation {
            kind,
            cycle,
            warp,
            reg: reg.raw() as u16,
            phys,
        };
        match table {
            None if shadow != UNMAPPED => self.detect(v(ViolationKind::UseAfterRelease, shadow)),
            Some(p) if shadow != UNMAPPED && p.index() as u32 != shadow => {
                self.detect(v(ViolationKind::MappingMismatch, p.index() as u32))
            }
            Some(p) if !live => self.detect(v(ViolationKind::AvailDisagree, p.index() as u32)),
            _ => None,
        }
    }

    /// Checks a warp's residual hardware mappings at retirement:
    /// anything still mapped in the table that the shadow already
    /// released is a swallowed (dropped) release.
    pub fn check_retire(
        &mut self,
        warp: usize,
        still_mapped: &[(ArchReg, PhysReg)],
        cycle: u64,
    ) -> Option<Violation> {
        if !self.enabled() {
            return None;
        }
        for &(reg, phys) in still_mapped {
            if self.shadow[warp][reg.index()] == UNMAPPED {
                return self.detect(Violation {
                    kind: ViolationKind::DroppedRelease,
                    cycle,
                    warp,
                    reg: reg.raw() as u16,
                    phys: phys.index() as u32,
                });
            }
        }
        None
    }

    /// End-of-kernel sweep: with all warps retired, no physical
    /// register may remain live.
    pub fn check_leak(&mut self, live_regs: usize, cycle: u64) -> Option<Violation> {
        if !self.enabled() || live_regs == 0 {
            return None;
        }
        self.detect(Violation {
            kind: ViolationKind::RegisterLeak,
            cycle,
            warp: Violation::NO_WARP,
            reg: Violation::NO_REG,
            phys: Violation::NO_PHYS,
        })
    }

    /// Reports an externally observed violation (availability-level
    /// double free, lost spill value) through the same counting path.
    pub fn report(&mut self, v: Violation) -> Option<Violation> {
        if !self.enabled() {
            return None;
        }
        self.detect(v)
    }

    /// Serializes the shadow model for a checkpoint frame. At
    /// `SanitizeLevel::Off` only the (empty) geometry and counter are
    /// written.
    pub fn encode(&self, e: &mut Enc) {
        e.usize(self.shadow.len());
        for row in &self.shadow {
            for &v in row {
                e.u32(v);
            }
        }
        e.usize(self.owner.len());
        for o in &self.owner {
            match o {
                None => e.bool(false),
                Some((w, r)) => {
                    e.bool(true);
                    e.u16(*w);
                    e.u8(*r);
                }
            }
        }
        e.u64(self.detections);
    }

    /// Rebuilds a sanitizer written by [`Sanitizer::encode`] for the
    /// same `level` and SM geometry.
    ///
    /// # Errors
    ///
    /// Rejects streams whose shadow geometry disagrees with the
    /// constructor arguments.
    pub fn decode(
        d: &mut Dec<'_>,
        level: SanitizeLevel,
        warp_slots: usize,
        phys_regs: usize,
    ) -> Result<Sanitizer, WireError> {
        let mut s = Sanitizer::new(level, warp_slots, phys_regs);
        if d.usize()? != s.shadow.len() {
            return Err(WireError::Invalid("sanitizer shadow slot count"));
        }
        for row in s.shadow.iter_mut() {
            for v in row.iter_mut() {
                *v = d.u32()?;
            }
        }
        if d.usize()? != s.owner.len() {
            return Err(WireError::Invalid("sanitizer owner count"));
        }
        for o in s.owner.iter_mut() {
            *o = if d.bool()? {
                Some((d.u16()?, d.u8()?))
            } else {
                None
            };
        }
        s.detections = d.u64()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> Sanitizer {
        Sanitizer::new(SanitizeLevel::Check, 8, 64)
    }

    #[test]
    fn off_level_is_inert() {
        let mut s = Sanitizer::new(SanitizeLevel::Off, 8, 64);
        assert!(!s.enabled());
        assert!(s.note_map(0, ArchReg::R1, PhysReg::new(3), 0).is_none());
        assert!(s.check_read(0, ArchReg::R1, None, false, 1).is_none());
        assert_eq!(s.detections(), 0);
    }

    #[test]
    fn clean_lifecycle_has_no_violations() {
        let mut s = san();
        let p = PhysReg::new(7);
        assert!(s.note_map(0, ArchReg::R2, p, 0).is_none());
        assert!(s.check_read(0, ArchReg::R2, Some(p), true, 1).is_none());
        s.note_release(0, ArchReg::R2);
        // released register re-read through a fresh mapping is clean
        let p2 = PhysReg::new(9);
        assert!(s.note_map(0, ArchReg::R2, p2, 2).is_none());
        assert!(s.check_read(0, ArchReg::R2, Some(p2), true, 3).is_none());
        assert_eq!(s.detections(), 0);
    }

    #[test]
    fn premature_release_is_use_after_release() {
        let mut s = san();
        let p = PhysReg::new(5);
        s.note_map(1, ArchReg::R3, p, 0);
        // hardware lost the mapping (injected premature release): the
        // shadow still says R3 is live
        let v = s.check_read(1, ArchReg::R3, None, false, 4).unwrap();
        assert_eq!(v.kind, ViolationKind::UseAfterRelease);
        assert_eq!(v.warp, 1);
        assert_eq!(v.reg, 3);
        assert_eq!(s.detections(), 1);
        assert!(format!("{v}").contains("use_after_release"));
    }

    #[test]
    fn corrupted_mapping_is_mismatch() {
        let mut s = san();
        s.note_map(0, ArchReg::R1, PhysReg::new(10), 0);
        let v = s
            .check_read(0, ArchReg::R1, Some(PhysReg::new(11)), true, 2)
            .unwrap();
        assert_eq!(v.kind, ViolationKind::MappingMismatch);
    }

    #[test]
    fn table_pointing_at_free_register_disagrees() {
        let mut s = san();
        s.note_map(0, ArchReg::R1, PhysReg::new(10), 0);
        let v = s
            .check_read(0, ArchReg::R1, Some(PhysReg::new(10)), false, 2)
            .unwrap();
        assert_eq!(v.kind, ViolationKind::AvailDisagree);
    }

    #[test]
    fn alias_detected_when_freed_register_is_reallocated() {
        let mut s = san();
        let p = PhysReg::new(20);
        s.note_map(0, ArchReg::R4, p, 0);
        // a premature release freed p behind the shadow's back; a new
        // warp now allocates it while warp 0 still owns it — the
        // violation names the victim, warp 0's R4
        let v = s.note_map(2, ArchReg::R0, p, 5).unwrap();
        assert_eq!(v.kind, ViolationKind::AliasedPhys);
        assert_eq!(v.warp, 0);
        assert_eq!(v.reg, 4);
    }

    #[test]
    fn legitimate_reallocation_after_release_is_clean() {
        let mut s = san();
        let p = PhysReg::new(20);
        s.note_map(0, ArchReg::R4, p, 0);
        s.note_release(0, ArchReg::R4);
        assert!(s.note_map(2, ArchReg::R0, p, 5).is_none());
    }

    #[test]
    fn dropped_release_caught_at_retirement() {
        let mut s = san();
        let p = PhysReg::new(8);
        s.note_map(0, ArchReg::R2, p, 0);
        s.note_release(0, ArchReg::R2);
        // the hardware release was swallowed: the table still maps R2
        let v = s.check_retire(0, &[(ArchReg::R2, p)], 9).unwrap();
        assert_eq!(v.kind, ViolationKind::DroppedRelease);
        // a register the shadow still considers live is fine to see
        s.note_map(1, ArchReg::R5, PhysReg::new(9), 10);
        assert!(s
            .check_retire(1, &[(ArchReg::R5, PhysReg::new(9))], 11)
            .is_none());
    }

    #[test]
    fn leak_sweep_fires_only_on_leftovers() {
        let mut s = san();
        assert!(s.check_leak(0, 100).is_none());
        let v = s.check_leak(3, 100).unwrap();
        assert_eq!(v.kind, ViolationKind::RegisterLeak);
        assert_eq!(v.warp, Violation::NO_WARP);
    }

    #[test]
    fn retire_clears_shadow_state() {
        let mut s = san();
        let p = PhysReg::new(12);
        s.note_map(0, ArchReg::R1, p, 0);
        s.note_retire(0);
        assert!(s.note_map(1, ArchReg::R2, p, 1).is_none(), "no stale alias");
        assert!(s.check_read(0, ArchReg::R1, None, false, 2).is_none());
    }

    #[test]
    fn snapshot_round_trips_shadow_intent() {
        let mut s = san();
        let p = PhysReg::new(5);
        s.note_map(1, ArchReg::R3, p, 0);
        let mut e = Enc::new();
        s.encode(&mut e);
        let bytes = e.into_bytes();
        let mut r = Sanitizer::decode(&mut Dec::new(&bytes), SanitizeLevel::Check, 8, 64).unwrap();
        // the restored shadow still knows warp 1 owns R3: losing the
        // mapping is still detected as a use-after-release
        let v = r.check_read(1, ArchReg::R3, None, false, 4).unwrap();
        assert_eq!(v.kind, ViolationKind::UseAfterRelease);
        // geometry disagreement is a typed error
        assert!(Sanitizer::decode(&mut Dec::new(&bytes), SanitizeLevel::Check, 9, 64).is_err());
        assert!(Sanitizer::decode(&mut Dec::new(&bytes), SanitizeLevel::Off, 8, 64).is_err());
        // an off-level sanitizer round-trips as empty
        let off = Sanitizer::new(SanitizeLevel::Off, 8, 64);
        let mut e2 = Enc::new();
        off.encode(&mut e2);
        let b2 = e2.into_bytes();
        let r2 = Sanitizer::decode(&mut Dec::new(&b2), SanitizeLevel::Off, 8, 64).unwrap();
        assert!(!r2.enabled());
    }

    #[test]
    fn levels_parse_and_display() {
        for l in [
            SanitizeLevel::Off,
            SanitizeLevel::Check,
            SanitizeLevel::Recover,
        ] {
            assert_eq!(SanitizeLevel::parse(l.label()), Some(l));
            assert_eq!(format!("{l}"), l.label());
        }
        assert_eq!(SanitizeLevel::parse("paranoid"), None);
        assert_eq!(SanitizeLevel::default(), SanitizeLevel::Off);
    }
}
