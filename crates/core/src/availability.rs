//! Physical register availability vectors (paper §7.1): one bit
//! vector per register bank, with a subarray-packing allocation policy
//! that feeds the power-gating logic (§8.2).
//!
//! # Representation
//!
//! Availability is a single `u64` bitset over *global* physical
//! register indices (bit set = free), plus cached per-bank free
//! counts and per-subarray live-register counts. Allocation scans a
//! subarray's bit range word-by-word and picks the lowest set bit
//! with `trailing_zeros`, which is exactly the ascending first-fit
//! order of the original `Vec<Vec<bool>>` scan — the packing policy
//! (and therefore every downstream statistic) is bit-identical.
//!
//! Subarray boundaries are **not** assumed word-aligned: shrunk
//! register files have subarrays like 38 registers (`shrunk(40)` →
//! 608 regs → 152/bank → 38/subarray), so the scan masks partial
//! head and tail words. A subarray whose cached occupancy equals its
//! capacity is skipped without touching the bitset at all.

use rfv_isa::{BankId, PhysReg, NUM_REG_BANKS};
use rfv_trace::{Dec, Enc, WireError};

use crate::config::{RegFileConfig, SUBARRAYS_PER_BANK};

/// Per-bank physical register availability with subarray occupancy
/// tracking.
#[derive(Clone, Debug)]
pub struct Availability {
    bank_size: usize,
    subarray_size: usize,
    phys_regs: usize,
    /// Free bitmap over global physical indices (bit set = free).
    words: Vec<u64>,
    /// Live registers per global subarray id.
    subarray_occupancy: Vec<usize>,
    free_count: usize,
    free_per_bank: [usize; NUM_REG_BANKS],
    /// Precomputed `phys index → (bank, global subarray)`: `bank_of` /
    /// `subarray_of` run per operand and per alloc/free on the
    /// simulator's issue path, and the divisions by runtime bank and
    /// subarray sizes (not powers of two for shrunk files) are the
    /// expensive part.
    place: Vec<(u8, u16)>,
}

impl Availability {
    /// Creates a fully-free availability vector for `config`.
    pub fn new(config: &RegFileConfig) -> Availability {
        let phys_regs = config.phys_regs;
        let mut words = vec![u64::MAX; phys_regs.div_ceil(64)];
        // bits at or above phys_regs are permanently "not free"
        if !phys_regs.is_multiple_of(64) {
            *words.last_mut().expect("phys_regs > 0") = (1u64 << (phys_regs % 64)) - 1;
        }
        let (bank_size, subarray_size) = (config.bank_size(), config.subarray_size());
        let place = (0..phys_regs)
            .map(|idx| {
                let bank = idx / bank_size;
                let gsa = bank * SUBARRAYS_PER_BANK + (idx % bank_size) / subarray_size;
                (bank as u8, gsa as u16)
            })
            .collect();
        Availability {
            bank_size,
            subarray_size,
            phys_regs,
            words,
            subarray_occupancy: vec![0; config.num_subarrays()],
            free_count: phys_regs,
            free_per_bank: [config.bank_size(); NUM_REG_BANKS],
            place,
        }
    }

    /// The bank a physical register lives in.
    #[inline]
    pub fn bank_of(&self, p: PhysReg) -> BankId {
        BankId::new(usize::from(self.place[p.index()].0))
    }

    /// The global subarray id a physical register lives in.
    #[inline]
    pub fn subarray_of(&self, p: PhysReg) -> usize {
        usize::from(self.place[p.index()].1)
    }

    /// Allocates a register in `bank`, preferring subarrays that are
    /// already occupied (lowest index first) so that gated subarrays
    /// stay gated.
    ///
    /// Returns `None` when the bank is full.
    pub fn alloc_in_bank(&mut self, bank: BankId) -> Option<PhysReg> {
        let b = bank.index();
        // pass 1: subarrays already on
        for sa in 0..SUBARRAYS_PER_BANK {
            if self.subarray_occupancy[b * SUBARRAYS_PER_BANK + sa] == 0 {
                continue;
            }
            if let Some(p) = self.alloc_in_subarray(b, sa) {
                return Some(p);
            }
        }
        // pass 2: open the lowest gated subarray (occupancy 0 means
        // every register in it is free, so its first index wins)
        for sa in 0..SUBARRAYS_PER_BANK {
            if self.subarray_occupancy[b * SUBARRAYS_PER_BANK + sa] != 0 {
                continue;
            }
            if let Some(p) = self.alloc_in_subarray(b, sa) {
                return Some(p);
            }
        }
        None
    }

    fn alloc_in_subarray(&mut self, bank: usize, sa: usize) -> Option<PhysReg> {
        let gsa = bank * SUBARRAYS_PER_BANK + sa;
        // full subarray: no bit to find, skip the word scan entirely
        if self.subarray_occupancy[gsa] == self.subarray_size {
            return None;
        }
        let lo = bank * self.bank_size + sa * self.subarray_size;
        let hi = lo + self.subarray_size;
        let first = lo / 64;
        let last = (hi - 1) / 64;
        for w in first..=last {
            let mut word = self.words[w];
            if w == first {
                word &= u64::MAX << (lo % 64);
            }
            if w == last {
                let top = hi - w * 64;
                if top < 64 {
                    word &= (1u64 << top) - 1;
                }
            }
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                self.words[w] &= !(1u64 << bit);
                self.subarray_occupancy[gsa] += 1;
                self.free_count -= 1;
                self.free_per_bank[bank] -= 1;
                return Some(PhysReg::new((w * 64 + bit) as u16));
            }
        }
        None
    }

    /// Frees a previously allocated register; returns the register's
    /// global subarray id and whether the subarray became empty.
    ///
    /// Freeing an already-free register returns `None` and changes
    /// nothing. Absent injected faults the renaming table filters
    /// idempotent releases before they reach the availability vector,
    /// so a `None` here is a double release the sanitizer should
    /// report; the vector itself stays consistent either way.
    pub fn free(&mut self, p: PhysReg) -> Option<(usize, bool)> {
        let idx = p.index();
        let mask = 1u64 << (idx % 64);
        if self.words[idx / 64] & mask != 0 {
            return None;
        }
        self.words[idx / 64] |= mask;
        self.free_count += 1;
        let (bank, sa) = self.place[idx];
        self.free_per_bank[usize::from(bank)] += 1;
        let sa = usize::from(sa);
        self.subarray_occupancy[sa] -= 1;
        Some((sa, self.subarray_occupancy[sa] == 0))
    }

    /// Whether a physical register is currently assigned.
    pub fn is_live(&self, p: PhysReg) -> bool {
        self.words[p.index() / 64] & (1u64 << (p.index() % 64)) == 0
    }

    /// Number of free registers across all banks.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Number of free registers in one bank.
    pub fn free_in_bank(&self, bank: BankId) -> usize {
        self.free_per_bank[bank.index()]
    }

    /// Live (assigned) registers right now.
    pub fn live_count(&self) -> usize {
        self.phys_regs - self.free_count
    }

    /// Occupancy of each global subarray.
    pub fn subarray_occupancy(&self) -> &[usize] {
        &self.subarray_occupancy
    }

    /// Number of subarrays currently holding at least one live
    /// register.
    pub fn occupied_subarrays(&self) -> usize {
        self.subarray_occupancy.iter().filter(|&&o| o > 0).count()
    }

    /// Serializes the mutable allocation state (checkpoint frames).
    /// Geometry fields are derived from the config at decode time and
    /// not written.
    pub fn encode(&self, e: &mut Enc) {
        e.usize(self.words.len());
        for &w in &self.words {
            e.u64(w);
        }
        for &o in &self.subarray_occupancy {
            e.usize(o);
        }
        e.usize(self.free_count);
        for &f in &self.free_per_bank {
            e.usize(f);
        }
    }

    /// Rebuilds availability state written by [`Availability::encode`]
    /// for the same `config`.
    ///
    /// # Errors
    ///
    /// Rejects streams whose geometry disagrees with `config` or that
    /// violate the trailing-bit invariant (bits at or above
    /// `phys_regs` must stay clear).
    pub fn decode(d: &mut Dec<'_>, config: &RegFileConfig) -> Result<Availability, WireError> {
        let mut a = Availability::new(config);
        if d.usize()? != a.words.len() {
            return Err(WireError::Invalid("availability word count"));
        }
        for w in a.words.iter_mut() {
            *w = d.u64()?;
        }
        if !a.phys_regs.is_multiple_of(64) {
            let mask = (1u64 << (a.phys_regs % 64)) - 1;
            if a.words.last().is_some_and(|&w| w & !mask != 0) {
                return Err(WireError::Invalid("availability trailing bits set"));
            }
        }
        for o in a.subarray_occupancy.iter_mut() {
            *o = d.usize()?;
        }
        a.free_count = d.usize()?;
        if a.free_count > a.phys_regs {
            return Err(WireError::Invalid("availability free count"));
        }
        for f in a.free_per_bank.iter_mut() {
            *f = d.usize()?;
        }
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail() -> Availability {
        Availability::new(&RegFileConfig::baseline_full())
    }

    #[test]
    fn allocation_packs_lowest_subarray_first() {
        let mut a = avail();
        let bank = BankId::new(1);
        let mut regs = Vec::new();
        for _ in 0..65 {
            regs.push(a.alloc_in_bank(bank).unwrap());
        }
        // first 64 fill subarray 0 of bank 1, the 65th opens subarray 1
        assert!(regs[..64].iter().all(|&p| a.subarray_of(p) == 4));
        assert_eq!(a.subarray_of(regs[64]), 5);
        assert_eq!(a.occupied_subarrays(), 2);
        assert_eq!(a.free_count(), 1024 - 65);
    }

    #[test]
    fn free_reopens_space_and_reports_empty_subarray() {
        let mut a = avail();
        let p = a.alloc_in_bank(BankId::new(0)).unwrap();
        assert!(a.is_live(p));
        let (sa, empty) = a.free(p).unwrap();
        assert_eq!(sa, 0);
        assert!(empty);
        assert!(!a.is_live(p));
        assert_eq!(a.free_count(), 1024);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn freed_registers_are_reused_before_new_subarrays() {
        let mut a = avail();
        let bank = BankId::new(2);
        let first = a.alloc_in_bank(bank).unwrap();
        let _second = a.alloc_in_bank(bank).unwrap();
        a.free(first);
        let third = a.alloc_in_bank(bank).unwrap();
        assert_eq!(third, first, "packing reuses the freed slot");
        assert_eq!(a.occupied_subarrays(), 1);
    }

    #[test]
    fn bank_exhaustion_returns_none() {
        let mut a = avail();
        let bank = BankId::new(3);
        for _ in 0..256 {
            assert!(a.alloc_in_bank(bank).is_some());
        }
        assert!(a.alloc_in_bank(bank).is_none());
        assert_eq!(a.free_in_bank(bank), 0);
        assert_eq!(a.free_in_bank(BankId::new(0)), 256);
    }

    #[test]
    fn double_free_is_reported_not_fatal() {
        let mut a = avail();
        let p = a.alloc_in_bank(BankId::new(0)).unwrap();
        assert!(a.free(p).is_some());
        assert!(a.free(p).is_none(), "second free reports, never panics");
        assert_eq!(a.free_count(), 1024, "counters stay consistent");
    }

    #[test]
    fn bank_and_subarray_of_roundtrip() {
        let a = avail();
        // register 700 -> bank 2 (512..768), within-bank 188 -> subarray 2
        let p = PhysReg::new(700);
        assert_eq!(a.bank_of(p), BankId::new(2));
        assert_eq!(a.subarray_of(p), 2 * 4 + 188 / 64);
    }

    #[test]
    fn shrunk_file_geometry() {
        let mut a = Availability::new(&RegFileConfig::shrunk(50));
        assert_eq!(a.free_count(), 512);
        let bank = BankId::new(0);
        for _ in 0..128 {
            assert!(a.alloc_in_bank(bank).is_some());
        }
        assert!(a.alloc_in_bank(bank).is_none());
    }

    #[test]
    fn snapshot_round_trips_and_rejects_bad_geometry() {
        let config = RegFileConfig::shrunk(40); // non-word-aligned subarrays
        let mut a = Availability::new(&config);
        for _ in 0..37 {
            a.alloc_in_bank(BankId::new(1));
        }
        let mut e = Enc::new();
        a.encode(&mut e);
        let bytes = e.into_bytes();
        let b = Availability::decode(&mut Dec::new(&bytes), &config).unwrap();
        assert_eq!(b.free_count(), a.free_count());
        assert_eq!(b.subarray_occupancy(), a.subarray_occupancy());
        // a restored vector allocates exactly like the original
        let mut a2 = a.clone();
        let mut b2 = b;
        for _ in 0..10 {
            assert_eq!(
                a2.alloc_in_bank(BankId::new(1)),
                b2.alloc_in_bank(BankId::new(1))
            );
        }
        // wrong config geometry is a typed error, not a panic
        assert!(
            Availability::decode(&mut Dec::new(&bytes), &RegFileConfig::baseline_full()).is_err()
        );
        // truncation is a typed error
        assert!(Availability::decode(&mut Dec::new(&bytes[..bytes.len() - 3]), &config).is_err());
    }

    /// The pre-bitset implementation, kept as an executable model:
    /// per-bank `Vec<bool>` with linear first-fit subarray scans.
    struct RefAvail {
        bank_size: usize,
        subarray_size: usize,
        free: Vec<Vec<bool>>,
        subarray_occupancy: Vec<usize>,
        free_count: usize,
    }

    impl RefAvail {
        fn new(config: &RegFileConfig) -> RefAvail {
            RefAvail {
                bank_size: config.bank_size(),
                subarray_size: config.subarray_size(),
                free: vec![vec![true; config.bank_size()]; NUM_REG_BANKS],
                subarray_occupancy: vec![0; config.num_subarrays()],
                free_count: config.phys_regs,
            }
        }

        fn subarray_of(&self, p: PhysReg) -> usize {
            let bank = p.index() / self.bank_size;
            bank * SUBARRAYS_PER_BANK + (p.index() % self.bank_size) / self.subarray_size
        }

        fn alloc_in_bank(&mut self, bank: BankId) -> Option<PhysReg> {
            let b = bank.index();
            for pass in 0..2 {
                for sa in 0..SUBARRAYS_PER_BANK {
                    let occupied = self.subarray_occupancy[b * SUBARRAYS_PER_BANK + sa] != 0;
                    if occupied != (pass == 0) {
                        continue;
                    }
                    let lo = sa * self.subarray_size;
                    for idx in lo..lo + self.subarray_size {
                        if self.free[b][idx] {
                            self.free[b][idx] = false;
                            self.subarray_occupancy[b * SUBARRAYS_PER_BANK + sa] += 1;
                            self.free_count -= 1;
                            return Some(PhysReg::new((b * self.bank_size + idx) as u16));
                        }
                    }
                }
            }
            None
        }

        fn free_reg(&mut self, p: PhysReg) -> Option<(usize, bool)> {
            let (bank, idx) = (p.index() / self.bank_size, p.index() % self.bank_size);
            if self.free[bank][idx] {
                return None;
            }
            self.free[bank][idx] = true;
            self.free_count += 1;
            let sa = self.subarray_of(p);
            self.subarray_occupancy[sa] -= 1;
            Some((sa, self.subarray_occupancy[sa] == 0))
        }

        fn free_in_bank(&self, bank: BankId) -> usize {
            self.free[bank.index()].iter().filter(|&&f| f).count()
        }
    }

    /// Model-based differential test: random alloc/free churn must
    /// produce identical registers, reports, and counters on the
    /// bitset and on the pre-overhaul `Vec<bool>` reference, for both
    /// a word-aligned geometry (64-reg subarrays) and a non-aligned
    /// one (`shrunk(40)` → 38-reg subarrays spanning word boundaries).
    #[test]
    fn bitset_matches_vec_bool_model() {
        for config in [RegFileConfig::baseline_full(), RegFileConfig::shrunk(40)] {
            let mut a = Availability::new(&config);
            let mut r = RefAvail::new(&config);
            let mut live: Vec<PhysReg> = Vec::new();
            // deterministic LCG so failures reproduce
            let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut next = || {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                seed >> 33
            };
            for step in 0..20_000u32 {
                let roll = next();
                if live.is_empty() || roll % 5 < 3 {
                    let bank = BankId::new((next() % NUM_REG_BANKS as u64) as usize);
                    let (got, want) = (a.alloc_in_bank(bank), r.alloc_in_bank(bank));
                    assert_eq!(got, want, "alloc diverged at step {step}");
                    if let Some(p) = got {
                        live.push(p);
                    }
                } else {
                    let victim = live.swap_remove((next() as usize) % live.len());
                    assert_eq!(
                        a.free(victim),
                        r.free_reg(victim),
                        "free diverged at {step}"
                    );
                    // occasional double free must report None on both
                    if roll % 7 == 0 {
                        assert_eq!(a.free(victim), None);
                        assert_eq!(r.free_reg(victim), None);
                    }
                }
                assert_eq!(a.free_count(), r.free_count);
                if step % 512 == 0 {
                    assert_eq!(a.subarray_occupancy(), &r.subarray_occupancy[..]);
                    for b in 0..NUM_REG_BANKS {
                        assert_eq!(
                            a.free_in_bank(BankId::new(b)),
                            r.free_in_bank(BankId::new(b))
                        );
                    }
                }
            }
        }
    }
}
