//! Physical register availability vectors (paper §7.1): one bit
//! vector per register bank, with a subarray-packing allocation policy
//! that feeds the power-gating logic (§8.2).

use rfv_isa::{BankId, PhysReg, NUM_REG_BANKS};

use crate::config::{RegFileConfig, SUBARRAYS_PER_BANK};

/// Per-bank physical register availability with subarray occupancy
/// tracking.
#[derive(Clone, Debug)]
pub struct Availability {
    bank_size: usize,
    subarray_size: usize,
    /// `free[bank][idx]`: whether the register is unassigned.
    free: Vec<Vec<bool>>,
    /// Live registers per global subarray id.
    subarray_occupancy: Vec<usize>,
    free_count: usize,
}

impl Availability {
    /// Creates a fully-free availability vector for `config`.
    pub fn new(config: &RegFileConfig) -> Availability {
        Availability {
            bank_size: config.bank_size(),
            subarray_size: config.subarray_size(),
            free: vec![vec![true; config.bank_size()]; NUM_REG_BANKS],
            subarray_occupancy: vec![0; config.num_subarrays()],
            free_count: config.phys_regs,
        }
    }

    /// The bank a physical register lives in.
    pub fn bank_of(&self, p: PhysReg) -> BankId {
        BankId::new(p.index() / self.bank_size)
    }

    /// The global subarray id a physical register lives in.
    pub fn subarray_of(&self, p: PhysReg) -> usize {
        let bank = p.index() / self.bank_size;
        let within = p.index() % self.bank_size;
        bank * SUBARRAYS_PER_BANK + within / self.subarray_size
    }

    /// Allocates a register in `bank`, preferring subarrays that are
    /// already occupied (lowest index first) so that gated subarrays
    /// stay gated.
    ///
    /// Returns `None` when the bank is full.
    pub fn alloc_in_bank(&mut self, bank: BankId) -> Option<PhysReg> {
        let b = bank.index();
        // pass 1: subarrays already on
        for sa in 0..SUBARRAYS_PER_BANK {
            if self.subarray_occupancy[b * SUBARRAYS_PER_BANK + sa] == 0 {
                continue;
            }
            if let Some(p) = self.alloc_in_subarray(b, sa) {
                return Some(p);
            }
        }
        // pass 2: open the lowest gated subarray
        for sa in 0..SUBARRAYS_PER_BANK {
            if self.subarray_occupancy[b * SUBARRAYS_PER_BANK + sa] != 0 {
                continue;
            }
            if let Some(p) = self.alloc_in_subarray(b, sa) {
                return Some(p);
            }
        }
        None
    }

    fn alloc_in_subarray(&mut self, bank: usize, sa: usize) -> Option<PhysReg> {
        let lo = sa * self.subarray_size;
        let hi = lo + self.subarray_size;
        for idx in lo..hi {
            if self.free[bank][idx] {
                self.free[bank][idx] = false;
                self.subarray_occupancy[bank * SUBARRAYS_PER_BANK + sa] += 1;
                self.free_count -= 1;
                return Some(PhysReg::new((bank * self.bank_size + idx) as u16));
            }
        }
        None
    }

    /// Frees a previously allocated register; returns the register's
    /// global subarray id and whether the subarray became empty.
    ///
    /// Freeing an already-free register returns `None` and changes
    /// nothing. Absent injected faults the renaming table filters
    /// idempotent releases before they reach the availability vector,
    /// so a `None` here is a double release the sanitizer should
    /// report; the vector itself stays consistent either way.
    pub fn free(&mut self, p: PhysReg) -> Option<(usize, bool)> {
        let bank = p.index() / self.bank_size;
        let idx = p.index() % self.bank_size;
        if self.free[bank][idx] {
            return None;
        }
        self.free[bank][idx] = true;
        self.free_count += 1;
        let sa = self.subarray_of(p);
        self.subarray_occupancy[sa] -= 1;
        Some((sa, self.subarray_occupancy[sa] == 0))
    }

    /// Whether a physical register is currently assigned.
    pub fn is_live(&self, p: PhysReg) -> bool {
        let bank = p.index() / self.bank_size;
        let idx = p.index() % self.bank_size;
        !self.free[bank][idx]
    }

    /// Number of free registers across all banks.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Number of free registers in one bank.
    pub fn free_in_bank(&self, bank: BankId) -> usize {
        self.free[bank.index()].iter().filter(|&&f| f).count()
    }

    /// Live (assigned) registers right now.
    pub fn live_count(&self) -> usize {
        self.free.len() * self.bank_size - self.free_count
    }

    /// Occupancy of each global subarray.
    pub fn subarray_occupancy(&self) -> &[usize] {
        &self.subarray_occupancy
    }

    /// Number of subarrays currently holding at least one live
    /// register.
    pub fn occupied_subarrays(&self) -> usize {
        self.subarray_occupancy.iter().filter(|&&o| o > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail() -> Availability {
        Availability::new(&RegFileConfig::baseline_full())
    }

    #[test]
    fn allocation_packs_lowest_subarray_first() {
        let mut a = avail();
        let bank = BankId::new(1);
        let mut regs = Vec::new();
        for _ in 0..65 {
            regs.push(a.alloc_in_bank(bank).unwrap());
        }
        // first 64 fill subarray 0 of bank 1, the 65th opens subarray 1
        assert!(regs[..64].iter().all(|&p| a.subarray_of(p) == 4));
        assert_eq!(a.subarray_of(regs[64]), 5);
        assert_eq!(a.occupied_subarrays(), 2);
        assert_eq!(a.free_count(), 1024 - 65);
    }

    #[test]
    fn free_reopens_space_and_reports_empty_subarray() {
        let mut a = avail();
        let p = a.alloc_in_bank(BankId::new(0)).unwrap();
        assert!(a.is_live(p));
        let (sa, empty) = a.free(p).unwrap();
        assert_eq!(sa, 0);
        assert!(empty);
        assert!(!a.is_live(p));
        assert_eq!(a.free_count(), 1024);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn freed_registers_are_reused_before_new_subarrays() {
        let mut a = avail();
        let bank = BankId::new(2);
        let first = a.alloc_in_bank(bank).unwrap();
        let _second = a.alloc_in_bank(bank).unwrap();
        a.free(first);
        let third = a.alloc_in_bank(bank).unwrap();
        assert_eq!(third, first, "packing reuses the freed slot");
        assert_eq!(a.occupied_subarrays(), 1);
    }

    #[test]
    fn bank_exhaustion_returns_none() {
        let mut a = avail();
        let bank = BankId::new(3);
        for _ in 0..256 {
            assert!(a.alloc_in_bank(bank).is_some());
        }
        assert!(a.alloc_in_bank(bank).is_none());
        assert_eq!(a.free_in_bank(bank), 0);
        assert_eq!(a.free_in_bank(BankId::new(0)), 256);
    }

    #[test]
    fn double_free_is_reported_not_fatal() {
        let mut a = avail();
        let p = a.alloc_in_bank(BankId::new(0)).unwrap();
        assert!(a.free(p).is_some());
        assert!(a.free(p).is_none(), "second free reports, never panics");
        assert_eq!(a.free_count(), 1024, "counters stay consistent");
    }

    #[test]
    fn bank_and_subarray_of_roundtrip() {
        let a = avail();
        // register 700 -> bank 2 (512..768), within-bank 188 -> subarray 2
        let p = PhysReg::new(700);
        assert_eq!(a.bank_of(p), BankId::new(2));
        assert_eq!(a.subarray_of(p), 2 * 4 + 188 / 64);
    }

    #[test]
    fn shrunk_file_geometry() {
        let mut a = Availability::new(&RegFileConfig::shrunk(50));
        assert_eq!(a.free_count(), 512);
        let bank = BankId::new(0);
        for _ in 0..128 {
            assert!(a.alloc_in_bank(bank).is_some());
        }
        assert!(a.alloc_in_bank(bank).is_none());
    }
}
