//! # rfv-core — GPU register file virtualization
//!
//! The hardware models from *GPU Register File Virtualization*
//! (Jeon, Ravi, Kim, Annavaram — MICRO-48, 2015), reusable outside the
//! bundled simulator:
//!
//! * [`RenamingTable`] — per-warp architected → physical mappings
//!   (§7.1), with access counting for the energy model;
//! * [`Availability`] — per-bank availability vectors with
//!   subarray-packing allocation (§7.1 + §8.2);
//! * [`ReleaseFlagCache`] — the 10-entry direct-mapped cache of `pir`
//!   payloads that removes repeated metadata fetch/decode (§7.2);
//! * [`SubarrayGating`] — subarray-level power gating with wakeup
//!   latency and on-time integration (§8.2);
//! * [`CtaThrottle`] — GPU-shrink's per-CTA register balance counters
//!   that guarantee forward progress on an under-provisioned file
//!   (§8.1);
//! * [`RegisterFile`] — the facade combining all of the above;
//! * [`Sanitizer`] — an online shadow-model checker that detects
//!   unsound releases, aliased mappings, and table/availability
//!   disagreement (used by the simulator's `--sanitize` modes).
//!
//! ```
//! use rfv_core::{RegFileConfig, RegisterFile, WriteOutcome};
//! use rfv_isa::ArchReg;
//!
//! // a GPU-shrink file: 64 KB instead of the architected 128 KB
//! let mut rf = RegisterFile::new(RegFileConfig::shrunk(50), 48)?;
//! let WriteOutcome::Mapped { phys, .. } = rf.write(0, ArchReg::R3, 0) else {
//!     panic!("the empty file cannot be out of registers");
//! };
//! assert_eq!(rf.read(0, ArchReg::R3), Some(phys));
//! rf.release(0, ArchReg::R3, 10); // pir/pbr fired: reusable at once
//! assert_eq!(rf.live_count(), 0);
//! # Ok::<(), String>(())
//! ```

pub mod availability;
pub mod config;
pub mod flagcache;
pub mod gating;
pub mod regfile;
pub mod renaming;
pub mod sanitize;
pub mod throttle;

pub use availability::Availability;
pub use config::{RegFileConfig, VirtualizationPolicy, BASELINE_PHYS_REGS, SUBARRAYS_PER_BANK};
pub use flagcache::{FlagCacheStats, ReleaseFlagCache};
pub use gating::SubarrayGating;
pub use regfile::{RegFileStats, RegisterFile, StaticAllocError, WriteOutcome};
pub use renaming::{RenamingStats, RenamingTable};
pub use sanitize::{SanitizeLevel, Sanitizer, Violation, ViolationKind};
pub use throttle::{CtaThrottle, ThrottleDecision};
