//! The virtualized register file: renaming table + availability
//! vectors + subarray power gating behind one facade.
//!
//! The register file is policy-agnostic: the caller (the simulator)
//! decides which registers are *statically* mapped at warp launch
//! (all of them for a conventional GPU, the exempt set for full
//! virtualization, none for the hardware-only scheme) and when to call
//! [`RegisterFile::release`] (never for the conventional and
//! hardware-only schemes).

use std::fmt;

use rfv_isa::{ArchReg, BankId, PhysReg, MAX_REGS_PER_THREAD, NUM_REG_BANKS};
use rfv_trace::{Dec, Enc, Sink, TraceEvent, TraceKind, WireError};

use crate::availability::Availability;
use crate::config::RegFileConfig;
use crate::gating::SubarrayGating;
use crate::renaming::{decode_phys_row, encode_phys_row, RenamingStats, RenamingTable};

/// Aggregate register-file event counters (consumed by the energy
/// model).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RegFileStats {
    /// Physical register file read accesses (one per warp operand).
    pub rf_reads: u64,
    /// Physical register file write accesses.
    pub rf_writes: u64,
    /// Dynamic allocations (first writes of renamed registers).
    pub allocs: u64,
    /// Early releases (`pir`/`pbr` triggered).
    pub releases: u64,
    /// Static allocations at warp launch.
    pub static_allocs: u64,
    /// Allocation attempts that found no free register.
    pub alloc_failures: u64,
    /// Frees of an already-free register (never happens absent
    /// injected faults; the sanitizer reports these as double
    /// releases).
    pub double_free_attempts: u64,
    /// Peak concurrently-live physical registers.
    pub peak_live: usize,
}

/// Outcome of a register write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteOutcome {
    /// The write proceeds to `phys`, usable from cycle `ready_at`
    /// (later than `now` only when a gated subarray must wake).
    Mapped {
        /// The physical destination.
        phys: PhysReg,
        /// Cycle from which the register may be written.
        ready_at: u64,
        /// Whether this write allocated a fresh physical register.
        newly_allocated: bool,
    },
    /// No free physical register in the required bank(s); the warp
    /// must stall and the scheduler should consult the CTA throttle.
    NoFreeRegister,
}

/// Error launching a warp's static registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StaticAllocError {
    /// The bank that ran out of registers.
    pub bank: BankId,
}

impl fmt::Display for StaticAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no free physical register in {} for static mapping",
            self.bank
        )
    }
}

impl std::error::Error for StaticAllocError {}

/// The per-SM virtualized register file.
#[derive(Clone, Debug)]
pub struct RegisterFile {
    config: RegFileConfig,
    avail: Availability,
    table: RenamingTable,
    /// Static (renaming-exempt) mappings, per warp slot.
    static_map: Vec<[Option<PhysReg>; MAX_REGS_PER_THREAD]>,
    gating: SubarrayGating,
    stats: RegFileStats,
}

impl RegisterFile {
    /// Creates a register file with `warp_slots` warp contexts.
    ///
    /// # Errors
    ///
    /// Fails when the configuration is inconsistent (see
    /// [`RegFileConfig::validate`]).
    pub fn new(config: RegFileConfig, warp_slots: usize) -> Result<RegisterFile, String> {
        config.validate()?;
        Ok(RegisterFile {
            avail: Availability::new(&config),
            table: RenamingTable::new(warp_slots),
            static_map: vec![[None; MAX_REGS_PER_THREAD]; warp_slots],
            gating: SubarrayGating::new(
                config.num_subarrays(),
                config.power_gating,
                config.wakeup_cycles,
            ),
            stats: RegFileStats::default(),
            config,
        })
    }

    /// The configuration this file was built with.
    pub fn config(&self) -> &RegFileConfig {
        &self.config
    }

    /// Statically maps `regs` for a launching warp (conventional
    /// allocation, or the renaming-exempt set).
    ///
    /// # Errors
    ///
    /// Fails when a bank runs out of registers, releasing any
    /// registers this call already mapped so the warp slot stays clean
    /// for a retry; the caller must not launch the warp.
    pub fn launch_warp<I>(&mut self, warp: usize, regs: I, now: u64) -> Result<(), StaticAllocError>
    where
        I: IntoIterator<Item = ArchReg>,
    {
        self.launch_warp_traced(warp, regs, now, 0, &mut Sink::Noop)
    }

    /// [`RegisterFile::launch_warp`], emitting a
    /// [`TraceKind::RegAlloc`] event per static mapping (plus gating
    /// events for subarrays the allocations power on).
    ///
    /// # Errors
    ///
    /// See [`RegisterFile::launch_warp`]. A rolled-back partial launch
    /// leaves matching release events in the trace.
    pub fn launch_warp_traced<I>(
        &mut self,
        warp: usize,
        regs: I,
        now: u64,
        sm: u16,
        sink: &mut Sink,
    ) -> Result<(), StaticAllocError>
    where
        I: IntoIterator<Item = ArchReg>,
    {
        let mut mapped: Vec<ArchReg> = Vec::new();
        for reg in regs {
            debug_assert!(self.static_map[warp][reg.index()].is_none());
            let Some(phys) = self.alloc_for(warp, reg) else {
                // roll back this call's partial allocations
                let bank = self.bank_of_reg(warp, reg);
                for undo in mapped {
                    let p = self.static_map[warp][undo.index()]
                        .take()
                        .expect("just mapped");
                    self.emit_release(undo, p, now, sm, warp, sink);
                    self.note_free_traced(p, now, sm, sink);
                    self.stats.static_allocs -= 1;
                }
                return Err(StaticAllocError { bank });
            };
            self.note_alloc_traced(phys, now, sm, sink);
            self.emit_alloc(reg, phys, now, sm, warp, sink);
            self.stats.static_allocs += 1;
            self.static_map[warp][reg.index()] = Some(phys);
            mapped.push(reg);
        }
        Ok(())
    }

    /// The bank a warp's architected register belongs to.
    ///
    /// The compiler stripes operands by register id to avoid operand-
    /// collector conflicts; hardware additionally swizzles by warp id
    /// (as Fermi-class register files do) so that every warp's
    /// registers spread evenly over the four banks — per-warp operand
    /// conflict behaviour is unchanged, but capacity stays balanced.
    pub fn bank_of_reg(&self, warp: usize, reg: ArchReg) -> BankId {
        BankId::new((reg.index() + warp) % NUM_REG_BANKS)
    }

    fn alloc_for(&mut self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        let home = self.bank_of_reg(warp, reg);
        if let Some(p) = self.avail.alloc_in_bank(home) {
            return Some(p);
        }
        if self.config.bank_preserving {
            return None;
        }
        // ablation mode: fall back to any other bank
        (0..NUM_REG_BANKS)
            .map(BankId::new)
            .filter(|&b| b != home)
            .find_map(|b| self.avail.alloc_in_bank(b))
    }

    fn note_alloc_traced(&mut self, phys: PhysReg, now: u64, sm: u16, sink: &mut Sink) -> u64 {
        let sa = self.avail.subarray_of(phys);
        let ready = self.gating.note_occupied_traced(sa, now, sm, sink);
        self.stats.peak_live = self.stats.peak_live.max(self.avail.live_count());
        ready
    }

    fn note_free_traced(&mut self, phys: PhysReg, now: u64, sm: u16, sink: &mut Sink) {
        match self.avail.free(phys) {
            Some((sa, emptied)) => {
                if emptied {
                    self.gating.note_emptied_traced(sa, now, sm, sink);
                }
            }
            // double free: tolerated (renaming-table corruption can
            // funnel two names to one physical register); counted so
            // the sanitizer can report it
            None => self.stats.double_free_attempts += 1,
        }
    }

    fn emit_alloc(
        &self,
        reg: ArchReg,
        phys: PhysReg,
        now: u64,
        sm: u16,
        warp: usize,
        sink: &mut Sink,
    ) {
        if sink.enabled() {
            sink.emit(TraceEvent::warp_event(
                now,
                sm,
                warp,
                TraceKind::RegAlloc {
                    reg: reg.index() as u16,
                    phys: phys.index() as u32,
                    bank: self.avail.bank_of(phys).index() as u8,
                },
            ));
        }
    }

    fn emit_release(
        &self,
        reg: ArchReg,
        phys: PhysReg,
        now: u64,
        sm: u16,
        warp: usize,
        sink: &mut Sink,
    ) {
        if sink.enabled() {
            sink.emit(TraceEvent::warp_event(
                now,
                sm,
                warp,
                TraceKind::RegRelease {
                    reg: reg.index() as u16,
                    phys: phys.index() as u32,
                    bank: self.avail.bank_of(phys).index() as u8,
                },
            ));
        }
    }

    /// Resolves a register write: returns the existing mapping or
    /// allocates a fresh physical register in the register's bank.
    /// A failed allocation leaves all counters except
    /// [`RegFileStats::alloc_failures`] untouched, so stalled retries
    /// do not inflate access energy.
    pub fn write(&mut self, warp: usize, reg: ArchReg, now: u64) -> WriteOutcome {
        self.write_traced(warp, reg, now, 0, &mut Sink::Noop)
    }

    /// [`RegisterFile::write`], emitting [`TraceKind::RegAlloc`] and
    /// [`TraceKind::RegRename`] events when the write allocates a
    /// fresh physical register (plus a [`TraceKind::GateOn`] when the
    /// allocation powers a gated subarray).
    pub fn write_traced(
        &mut self,
        warp: usize,
        reg: ArchReg,
        now: u64,
        sm: u16,
        sink: &mut Sink,
    ) -> WriteOutcome {
        if let Some(phys) = self.static_map[warp][reg.index()] {
            self.stats.rf_writes += 1;
            return WriteOutcome::Mapped {
                phys,
                ready_at: now,
                newly_allocated: false,
            };
        }
        if let Some(phys) = self.table.lookup(warp, reg) {
            self.stats.rf_writes += 1;
            return WriteOutcome::Mapped {
                phys,
                ready_at: now,
                newly_allocated: false,
            };
        }
        match self.alloc_for(warp, reg) {
            Some(phys) => {
                let ready_at = self.note_alloc_traced(phys, now, sm, sink);
                self.stats.allocs += 1;
                self.stats.rf_writes += 1;
                self.emit_alloc(reg, phys, now, sm, warp, sink);
                self.table.map_traced(warp, reg, phys, now, sm, sink);
                WriteOutcome::Mapped {
                    phys,
                    ready_at,
                    newly_allocated: true,
                }
            }
            None => {
                self.stats.alloc_failures += 1;
                WriteOutcome::NoFreeRegister
            }
        }
    }

    /// Resolves a register read. Returns `None` when the register was
    /// never written (an undefined read — well-formed kernels never do
    /// this for renamed registers).
    pub fn read(&mut self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        self.stats.rf_reads += 1;
        if let Some(phys) = self.static_map[warp][reg.index()] {
            return Some(phys);
        }
        self.table.lookup(warp, reg)
    }

    /// Reads a mapping without counting an access (statistics and
    /// initialization helpers).
    pub fn peek(&self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        self.static_map[warp][reg.index()].or_else(|| self.table.peek(warp, reg))
    }

    /// Releases a renamed register (a `pir`/`pbr` firing). Idempotent;
    /// static mappings are unaffected. Returns whether a physical
    /// register was actually freed.
    pub fn release(&mut self, warp: usize, reg: ArchReg, now: u64) -> bool {
        self.release_traced(warp, reg, now, 0, &mut Sink::Noop)
    }

    /// [`RegisterFile::release`], emitting a [`TraceKind::RegRelease`]
    /// event when a physical register is actually freed (plus a
    /// [`TraceKind::GateOff`] when its subarray empties).
    pub fn release_traced(
        &mut self,
        warp: usize,
        reg: ArchReg,
        now: u64,
        sm: u16,
        sink: &mut Sink,
    ) -> bool {
        if self.static_map[warp][reg.index()].is_some() {
            return false;
        }
        match self.table.release(warp, reg) {
            Some(phys) => {
                self.emit_release(reg, phys, now, sm, warp, sink);
                self.note_free_traced(phys, now, sm, sink);
                self.stats.releases += 1;
                true
            }
            None => false,
        }
    }

    /// Releases everything a warp holds (warp completion), static
    /// mappings included. Returns the number of physical registers
    /// freed.
    pub fn retire_warp(&mut self, warp: usize, now: u64) -> usize {
        self.retire_warp_traced(warp, now, 0, &mut Sink::Noop)
    }

    /// [`RegisterFile::retire_warp`], emitting a
    /// [`TraceKind::RegRelease`] event per freed register.
    pub fn retire_warp_traced(&mut self, warp: usize, now: u64, sm: u16, sink: &mut Sink) -> usize {
        if sink.enabled() {
            // Snapshot the arch → phys pairs before tearing the
            // mappings down so the events carry architected ids.
            let pairs: Vec<(ArchReg, PhysReg)> = ArchReg::all()
                .filter_map(|r| self.peek(warp, r).map(|p| (r, p)))
                .collect();
            for (r, p) in pairs {
                self.emit_release(r, p, now, sm, warp, sink);
            }
        }
        let mut freed = self.table.release_warp(warp);
        for slot in self.static_map[warp].iter_mut() {
            if let Some(p) = slot.take() {
                freed.push(p);
            }
        }
        for &p in &freed {
            self.note_free_traced(p, now, sm, sink);
        }
        freed.len()
    }

    /// Free physical registers across all banks.
    pub fn free_count(&self) -> usize {
        self.avail.free_count()
    }

    /// Live (assigned) physical registers.
    pub fn live_count(&self) -> usize {
        self.avail.live_count()
    }

    /// Subarrays currently powered on.
    pub fn subarrays_on(&self) -> usize {
        if self.config.power_gating {
            self.gating.on_count()
        } else {
            self.config.num_subarrays()
        }
    }

    /// Integral of powered subarrays over time (subarray-cycles).
    pub fn subarray_on_integral(&mut self, now: u64) -> u64 {
        self.gating.on_integral(now)
    }

    /// Subarray wakeup events so far.
    pub fn wakeups(&self) -> u64 {
        self.gating.wakeups()
    }

    /// Register-file event counters.
    pub fn stats(&self) -> RegFileStats {
        self.stats
    }

    /// Renaming-table access counters.
    pub fn renaming_stats(&self) -> RenamingStats {
        self.table.stats()
    }

    /// The bank a physical register resides in (operand-collector
    /// conflict modelling).
    pub fn bank_of_phys(&self, p: PhysReg) -> BankId {
        self.avail.bank_of(p)
    }

    /// Live registers per global subarray id (Figure 8's occupancy
    /// map; subarray ids are `bank * 4 + subarray-within-bank`).
    pub fn subarray_occupancy(&self) -> &[usize] {
        self.avail.subarray_occupancy()
    }

    /// Live renaming-table mappings (dynamic, excludes static).
    pub fn mapped_count(&self) -> usize {
        self.table.total_mapped()
    }

    /// Live renaming-table mappings of one warp — the cached count
    /// behind [`RegisterFile::mapped_regs`]`.len()`, without
    /// materializing the register list (the spill victim scan calls
    /// this per candidate warp).
    pub fn mapped_count_of(&self, warp: usize) -> usize {
        self.table.mapped_count(warp)
    }

    /// The dynamically-mapped registers of one warp (used by the
    /// GPU-shrink spill fallback to pick what to save).
    pub fn mapped_regs(&self, warp: usize) -> Vec<ArchReg> {
        ArchReg::all()
            .filter(|&r| self.table.peek(warp, r).is_some())
            .collect()
    }

    /// A warp's dynamic (renamed) mappings as `(arch, phys)` pairs
    /// (the sanitizer's retirement sweep).
    pub fn mapped_pairs(&self, warp: usize) -> Vec<(ArchReg, PhysReg)> {
        ArchReg::all()
            .filter_map(|r| self.table.peek(warp, r).map(|p| (r, p)))
            .collect()
    }

    /// Whether a physical register is currently assigned in the
    /// availability vector (sanitizer cross-check).
    pub fn is_phys_live(&self, p: PhysReg) -> bool {
        self.avail.is_live(p)
    }

    /// Free registers in one bank (watchdog diagnostics).
    pub fn free_in_bank(&self, bank: BankId) -> usize {
        self.avail.free_in_bank(bank)
    }

    /// Fault injection only: corrupts the renaming-table entry of a
    /// mapped `(warp, reg)` to point at `phys`, returning the
    /// previous mapping. No statistics or gating state change — the
    /// corruption is invisible to the hardware until something reads
    /// through it, exactly like a flipped SRAM bit.
    pub fn inject_remap(&mut self, warp: usize, reg: ArchReg, phys: PhysReg) -> Option<PhysReg> {
        if self.static_map[warp][reg.index()].is_some() {
            return None;
        }
        self.table.corrupt(warp, reg, phys)
    }

    /// Serializes the full register-file state (availability, renaming
    /// table, static mappings, gating, counters) for a checkpoint
    /// frame. The config itself is not written — the restore side
    /// rebuilds from its own config and rejects geometry mismatches.
    pub fn encode(&self, e: &mut Enc) {
        self.avail.encode(e);
        self.table.encode(e);
        e.usize(self.static_map.len());
        for row in &self.static_map {
            encode_phys_row(e, row);
        }
        self.gating.encode(e);
        e.u64(self.stats.rf_reads);
        e.u64(self.stats.rf_writes);
        e.u64(self.stats.allocs);
        e.u64(self.stats.releases);
        e.u64(self.stats.static_allocs);
        e.u64(self.stats.alloc_failures);
        e.u64(self.stats.double_free_attempts);
        e.usize(self.stats.peak_live);
    }

    /// Rebuilds a register file written by [`RegisterFile::encode`]
    /// for the same `config` and `warp_slots`.
    ///
    /// # Errors
    ///
    /// Rejects invalid configs and streams whose geometry disagrees
    /// with `config`/`warp_slots`.
    pub fn decode(
        d: &mut Dec<'_>,
        config: RegFileConfig,
        warp_slots: usize,
    ) -> Result<RegisterFile, WireError> {
        config
            .validate()
            .map_err(|_| WireError::Invalid("register file config"))?;
        let avail = Availability::decode(d, &config)?;
        let table = RenamingTable::decode(d, warp_slots)?;
        if d.usize()? != warp_slots {
            return Err(WireError::Invalid("static map slot count"));
        }
        let mut static_map = Vec::with_capacity(warp_slots);
        for _ in 0..warp_slots {
            static_map.push(decode_phys_row(d)?);
        }
        let gating = SubarrayGating::decode(
            d,
            config.num_subarrays(),
            config.power_gating,
            config.wakeup_cycles,
        )?;
        let stats = RegFileStats {
            rf_reads: d.u64()?,
            rf_writes: d.u64()?,
            allocs: d.u64()?,
            releases: d.u64()?,
            static_allocs: d.u64()?,
            alloc_failures: d.u64()?,
            double_free_attempts: d.u64()?,
            peak_live: d.usize()?,
        };
        Ok(RegisterFile {
            config,
            avail,
            table,
            static_map,
            gating,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf(config: RegFileConfig) -> RegisterFile {
        RegisterFile::new(config, 48).unwrap()
    }

    #[test]
    fn write_allocates_then_reuses_mapping() {
        let mut f = rf(RegFileConfig::baseline_full());
        let w = 3;
        let r = ArchReg::R2;
        let WriteOutcome::Mapped {
            phys,
            newly_allocated,
            ..
        } = f.write(w, r, 0)
        else {
            panic!("allocation failed")
        };
        assert!(newly_allocated);
        // second write reuses the same physical register
        match f.write(w, r, 5) {
            WriteOutcome::Mapped {
                phys: p2,
                newly_allocated: fresh,
                ..
            } => {
                assert_eq!(p2, phys);
                assert!(!fresh);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(f.read(w, r), Some(phys));
        assert_eq!(f.live_count(), 1);
    }

    #[test]
    fn bank_preservation_holds() {
        let mut f = rf(RegFileConfig::baseline_full());
        for w in [0usize, 1, 7] {
            for id in 0..8u8 {
                let reg = ArchReg::new(id);
                let WriteOutcome::Mapped { phys, .. } = f.write(w, reg, 0) else {
                    panic!()
                };
                assert_eq!(
                    f.avail.bank_of(phys),
                    f.bank_of_reg(w, reg),
                    "renamed register must stay in its (swizzled) compiler bank"
                );
            }
        }
    }

    #[test]
    fn release_frees_and_is_idempotent() {
        let mut f = rf(RegFileConfig::baseline_full());
        f.write(0, ArchReg::R1, 0);
        assert!(f.release(0, ArchReg::R1, 1));
        assert!(!f.release(0, ArchReg::R1, 2));
        assert_eq!(f.live_count(), 0);
        assert_eq!(f.stats().releases, 1);
    }

    #[test]
    fn static_mappings_resist_release() {
        let mut f = rf(RegFileConfig::baseline_full());
        f.launch_warp(0, [ArchReg::R0, ArchReg::R4], 0).unwrap();
        assert_eq!(f.stats().static_allocs, 2);
        assert!(
            !f.release(0, ArchReg::R0, 1),
            "static regs never release early"
        );
        assert_eq!(f.live_count(), 2);
        let phys = f.read(0, ArchReg::R0).unwrap();
        match f.write(0, ArchReg::R0, 2) {
            WriteOutcome::Mapped {
                phys: p,
                newly_allocated,
                ..
            } => {
                assert_eq!(p, phys);
                assert!(!newly_allocated);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retire_warp_frees_everything() {
        let mut f = rf(RegFileConfig::baseline_full());
        f.launch_warp(2, [ArchReg::R0], 0).unwrap();
        f.write(2, ArchReg::R1, 0);
        f.write(2, ArchReg::R2, 0);
        assert_eq!(f.retire_warp(2, 10), 3);
        assert_eq!(f.live_count(), 0);
        assert_eq!(f.free_count(), 1024);
    }

    #[test]
    fn bank_exhaustion_reports_no_free_register() {
        let mut f = rf(RegFileConfig::shrunk(50));
        // bank 0 in the 64 KB file holds 128 registers; with the warp
        // swizzle, warp 0's r0/r4/... target bank 0. Fill from a
        // single warp so everything lands in one bank: warp 0 has 16
        // register ids mapping to bank 0 (r0, r4, ..., r60), so use
        // several warps with compensating ids.
        let mut failures = 0;
        let mut successes = 0;
        for w in 0..48usize {
            for id in (0..60u8).filter(|id| (usize::from(*id) + w) % 4 == 0) {
                match f.write(w, ArchReg::new(id), 0) {
                    WriteOutcome::Mapped { .. } => successes += 1,
                    WriteOutcome::NoFreeRegister => failures += 1,
                }
            }
        }
        assert_eq!(successes, 128, "bank 0 capacity in the shrunk file");
        assert!(failures > 0, "bank 0 must eventually fill");
        assert_eq!(f.stats().alloc_failures, failures);
        assert!(f.free_count() > 0, "other banks still free");
    }

    #[test]
    fn gating_reports_wakeups_and_integral() {
        let mut f = rf(RegFileConfig::baseline_full());
        match f.write(0, ArchReg::R0, 10) {
            WriteOutcome::Mapped { ready_at, .. } => {
                assert_eq!(ready_at, 11, "1-cycle wakeup for a fresh subarray")
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(f.subarrays_on(), 1);
        assert_eq!(f.wakeups(), 1);
        f.release(0, ArchReg::R0, 30);
        assert_eq!(f.subarrays_on(), 0);
        assert_eq!(f.subarray_on_integral(40), 20);
    }

    #[test]
    fn ungated_file_reports_all_subarrays_on() {
        let mut f = rf(RegFileConfig::conventional());
        assert_eq!(f.subarrays_on(), 16);
        match f.write(0, ArchReg::R0, 10) {
            WriteOutcome::Mapped { ready_at, .. } => assert_eq!(ready_at, 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undefined_read_returns_none() {
        let mut f = rf(RegFileConfig::baseline_full());
        assert_eq!(f.read(0, ArchReg::R7), None);
        assert_eq!(f.stats().rf_reads, 1);
    }

    #[test]
    fn peak_live_tracks_maximum() {
        let mut f = rf(RegFileConfig::baseline_full());
        f.write(0, ArchReg::R0, 0);
        f.write(0, ArchReg::R1, 0);
        f.release(0, ArchReg::R0, 1);
        f.release(0, ArchReg::R1, 1);
        f.write(0, ArchReg::R2, 2);
        assert_eq!(f.stats().peak_live, 2);
    }

    #[test]
    fn traced_lifecycle_emits_register_events() {
        use crate::renaming::NO_PHYS;

        let mut sink = Sink::ring(64);
        let mut f = rf(RegFileConfig::baseline_full());
        let w = 1;

        f.launch_warp_traced(w, [ArchReg::R0], 0, 2, &mut sink)
            .unwrap();
        let WriteOutcome::Mapped { phys, .. } = f.write_traced(w, ArchReg::R3, 1, 2, &mut sink)
        else {
            panic!("allocation failed")
        };
        assert!(f.release_traced(w, ArchReg::R3, 5, 2, &mut sink));
        assert_eq!(f.retire_warp_traced(w, 9, 2, &mut sink), 1);

        let events = sink.into_events();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        let phys_id = phys.index() as u32;
        // static alloc: GateOn then RegAlloc for R0
        assert!(matches!(kinds[0], TraceKind::GateOn { .. }));
        assert!(matches!(kinds[1], TraceKind::RegAlloc { reg: 0, .. }));
        // dynamic write: GateOn (different subarray), RegAlloc, RegRename
        assert!(matches!(kinds[2], TraceKind::GateOn { .. }));
        assert_eq!(
            kinds[3],
            TraceKind::RegAlloc {
                reg: 3,
                phys: phys_id,
                bank: f.bank_of_phys(phys).index() as u8,
            }
        );
        assert!(matches!(
            kinds[4],
            TraceKind::RegRename {
                reg: 3,
                old_phys: NO_PHYS,
                ..
            }
        ));
        // early release then GateOff
        assert!(matches!(kinds[5], TraceKind::RegRelease { reg: 3, .. }));
        assert!(matches!(kinds[6], TraceKind::GateOff { .. }));
        // retire releases the static R0
        assert!(matches!(kinds[7], TraceKind::RegRelease { reg: 0, .. }));
        assert!(matches!(kinds[8], TraceKind::GateOff { .. }));
        assert_eq!(events.len(), 9);
        // every event is attributed to SM 2; warp events to warp 1
        assert!(events.iter().all(|e| e.sm == 2));
    }

    #[test]
    fn snapshot_round_trips_whole_register_file() {
        let mut f = rf(RegFileConfig::baseline_full());
        f.launch_warp(0, [ArchReg::R0, ArchReg::R4], 0).unwrap();
        f.write(0, ArchReg::R1, 1);
        f.write(3, ArchReg::R2, 2);
        f.release(0, ArchReg::R1, 5);
        let mut e = Enc::new();
        f.encode(&mut e);
        let bytes = e.into_bytes();
        let mut r = RegisterFile::decode(&mut Dec::new(&bytes), RegFileConfig::baseline_full(), 48)
            .unwrap();
        assert_eq!(r.live_count(), f.live_count());
        assert_eq!(r.stats(), f.stats());
        assert_eq!(r.renaming_stats(), f.renaming_stats());
        assert_eq!(r.peek(0, ArchReg::R0), f.peek(0, ArchReg::R0));
        assert_eq!(r.peek(3, ArchReg::R2), f.peek(3, ArchReg::R2));
        assert_eq!(r.subarrays_on(), f.subarrays_on());
        // the restored file allocates identically from here on
        match (f.write(1, ArchReg::R7, 10), r.write(1, ArchReg::R7, 10)) {
            (WriteOutcome::Mapped { phys: a, .. }, WriteOutcome::Mapped { phys: b, .. }) => {
                assert_eq!(a, b)
            }
            other => panic!("{other:?}"),
        }
        // wrong geometry is a typed error, never a panic
        assert!(
            RegisterFile::decode(&mut Dec::new(&bytes), RegFileConfig::shrunk(50), 48).is_err()
        );
        assert!(RegisterFile::decode(
            &mut Dec::new(&bytes[..40]),
            RegFileConfig::baseline_full(),
            48
        )
        .is_err());
    }

    #[test]
    fn bank_fallback_ablation() {
        let mut cfg = RegFileConfig::shrunk(50);
        cfg.bank_preserving = false;
        let mut f = RegisterFile::new(cfg, 48).unwrap();
        // target bank 0 only (ids compensating the warp swizzle); with
        // the fallback enabled, allocations overflow into other banks
        let mut allocated = 0;
        'outer: for w in 0..48usize {
            for id in (0..60u8).filter(|id| (usize::from(*id) + w) % 4 == 0) {
                match f.write(w, ArchReg::new(id), 0) {
                    WriteOutcome::Mapped { .. } => allocated += 1,
                    WriteOutcome::NoFreeRegister => break 'outer,
                }
            }
        }
        assert!(
            allocated > 128,
            "fallback must spill into other banks, got {allocated}"
        );
    }
}
