//! Register-file and virtualization configuration.

use std::fmt;

use rfv_isa::NUM_REG_BANKS;

/// Subarrays per register bank (the power-gating granularity,
/// Figure 8).
pub const SUBARRAYS_PER_BANK: usize = 4;

/// Physical warp-registers in the baseline 128 KB register file
/// (1024 × 32 lanes × 4 B).
pub const BASELINE_PHYS_REGS: usize = 1024;

/// How architected registers map to physical registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VirtualizationPolicy {
    /// Conventional GPU: every architected register of every resident
    /// warp is statically allocated at CTA launch and held until CTA
    /// completion.
    None,
    /// The NVIDIA-patent hardware-only scheme of Tarjan & Skadron
    /// \[46\]: a physical register is allocated at a register's first
    /// write and held until CTA completion (release on redefinition
    /// immediately re-allocates, so occupancy is first-write → CTA
    /// end). No compiler lifetime knowledge.
    HardwareOnly,
    /// The paper's full scheme: allocation at first write, release at
    /// the compiler-computed lifetime end (`pir`/`pbr` flags).
    Full,
}

impl VirtualizationPolicy {
    /// Whether any renaming hardware is present.
    pub fn renames(self) -> bool {
        !matches!(self, VirtualizationPolicy::None)
    }

    /// Whether compiler release flags are honoured.
    pub fn uses_release_flags(self) -> bool {
        matches!(self, VirtualizationPolicy::Full)
    }
}

impl fmt::Display for VirtualizationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VirtualizationPolicy::None => "none",
            VirtualizationPolicy::HardwareOnly => "hardware-only",
            VirtualizationPolicy::Full => "full",
        };
        f.write_str(s)
    }
}

/// Register-file hardware configuration for one SM.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RegFileConfig {
    /// Total physical warp-registers (1024 = 128 KB baseline;
    /// 512 = the GPU-shrink 64 KB file).
    pub phys_regs: usize,
    /// Renaming / release policy.
    pub policy: VirtualizationPolicy,
    /// Whether unused subarrays are power-gated.
    pub power_gating: bool,
    /// Cycles a gated subarray needs to wake before first use
    /// (CACTI-P estimates < 1; the paper sweeps 1/3/10).
    pub wakeup_cycles: u64,
    /// Entries in the release flag cache (paper default: 10).
    pub flag_cache_entries: usize,
    /// Whether renaming is restricted to the compiler-assigned bank
    /// (paper §7.1 preserves the compiler's bank striping to avoid
    /// operand-collector conflicts; disabling this is an ablation).
    pub bank_preserving: bool,
}

impl RegFileConfig {
    /// The paper's baseline: 128 KB file, full virtualization, power
    /// gating with a 1-cycle wakeup, 10-entry flag cache.
    pub fn baseline_full() -> RegFileConfig {
        RegFileConfig {
            phys_regs: BASELINE_PHYS_REGS,
            policy: VirtualizationPolicy::Full,
            power_gating: true,
            wakeup_cycles: 1,
            flag_cache_entries: 10,
            bank_preserving: true,
        }
    }

    /// The conventional GPU: 128 KB file, no renaming, no gating.
    pub fn conventional() -> RegFileConfig {
        RegFileConfig {
            phys_regs: BASELINE_PHYS_REGS,
            policy: VirtualizationPolicy::None,
            power_gating: false,
            wakeup_cycles: 0,
            flag_cache_entries: 0,
            bank_preserving: true,
        }
    }

    /// GPU-shrink: a file shrunk by `percent`% (the paper evaluates
    /// 50%, 40% and 30%), full virtualization.
    ///
    /// # Panics
    ///
    /// Panics when `percent >= 100`.
    pub fn shrunk(percent: usize) -> RegFileConfig {
        assert!(percent < 100, "cannot shrink the register file away");
        let mut c = RegFileConfig::baseline_full();
        let per_subarray = NUM_REG_BANKS * SUBARRAYS_PER_BANK;
        // round down to whole subarrays so banks stay uniform
        c.phys_regs = BASELINE_PHYS_REGS * (100 - percent) / 100 / per_subarray * per_subarray;
        c
    }

    /// Physical registers per bank.
    pub fn bank_size(&self) -> usize {
        self.phys_regs / NUM_REG_BANKS
    }

    /// Physical registers per subarray.
    pub fn subarray_size(&self) -> usize {
        self.bank_size() / SUBARRAYS_PER_BANK
    }

    /// Total subarrays across all banks.
    pub fn num_subarrays(&self) -> usize {
        NUM_REG_BANKS * SUBARRAYS_PER_BANK
    }

    /// Register file capacity in kilobytes (32 lanes × 4 B per
    /// warp-register).
    pub fn size_kib(&self) -> usize {
        self.phys_regs * rfv_isa::WARP_SIZE * 4 / 1024
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description when the register count does not divide
    /// evenly into banks and subarrays.
    pub fn validate(&self) -> Result<(), String> {
        let per_bank = NUM_REG_BANKS * SUBARRAYS_PER_BANK;
        if self.phys_regs == 0 || !self.phys_regs.is_multiple_of(per_bank) {
            return Err(format!(
                "physical register count {} must be a positive multiple of {per_bank}",
                self.phys_regs
            ));
        }
        Ok(())
    }
}

impl Default for RegFileConfig {
    fn default() -> RegFileConfig {
        RegFileConfig::baseline_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_geometry() {
        let c = RegFileConfig::baseline_full();
        assert_eq!(c.phys_regs, 1024);
        assert_eq!(c.bank_size(), 256);
        assert_eq!(c.subarray_size(), 64);
        assert_eq!(c.num_subarrays(), 16);
        assert_eq!(c.size_kib(), 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn shrink_halves_the_file() {
        let c = RegFileConfig::shrunk(50);
        assert_eq!(c.phys_regs, 512);
        assert_eq!(c.size_kib(), 64);
        assert!(c.validate().is_ok());
        let c40 = RegFileConfig::shrunk(40);
        assert_eq!(c40.phys_regs, 608); // 614 rounded down to whole subarrays
        assert!(c40.validate().is_ok());
        assert_eq!(c40.size_kib(), 76);
    }

    #[test]
    fn invalid_sizes_rejected() {
        let mut c = RegFileConfig::baseline_full();
        c.phys_regs = 100; // not a multiple of 16
        assert!(c.validate().is_err());
        c.phys_regs = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn policy_capabilities() {
        assert!(!VirtualizationPolicy::None.renames());
        assert!(VirtualizationPolicy::HardwareOnly.renames());
        assert!(!VirtualizationPolicy::HardwareOnly.uses_release_flags());
        assert!(VirtualizationPolicy::Full.uses_release_flags());
        assert_eq!(VirtualizationPolicy::Full.to_string(), "full");
    }
}
