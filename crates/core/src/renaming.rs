//! The per-SM register renaming table (paper §7.1).
//!
//! The table is indexed by (warp slot, architected register id) and
//! stores a 10-bit physical register id. It is banked four ways so the
//! operand collector can look up several operands concurrently; bank
//! conflicts are the simulator's concern — this module models content
//! and access counting.

use rfv_isa::{ArchReg, PhysReg, MAX_REGS_PER_THREAD};
use rfv_trace::{Dec, Enc, Sink, TraceEvent, TraceKind, WireError};

pub(crate) fn encode_phys_row(e: &mut Enc, row: &[Option<PhysReg>; MAX_REGS_PER_THREAD]) {
    for slot in row {
        e.opt_u64(slot.map(|p| u64::from(p.raw())));
    }
}

pub(crate) fn decode_phys_row(
    d: &mut Dec<'_>,
) -> Result<[Option<PhysReg>; MAX_REGS_PER_THREAD], WireError> {
    let mut row = [None; MAX_REGS_PER_THREAD];
    for slot in row.iter_mut() {
        *slot = match d.opt_u64()? {
            None => None,
            Some(v) => Some(PhysReg::new(
                u16::try_from(v).map_err(|_| WireError::Invalid("phys reg id"))?,
            )),
        };
    }
    Ok(row)
}

/// Sentinel `old_phys` in [`TraceKind::RegRename`] events: the
/// architected register had no previously-traced physical mapping.
pub const NO_PHYS: u32 = u32::MAX;

/// Access counters for renaming-table energy accounting.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RenamingStats {
    /// Name lookups (reads of the table).
    pub lookups: u64,
    /// Mapping installs and removals (writes to the table).
    pub updates: u64,
}

/// The renaming table: per-warp architected → physical mappings.
#[derive(Clone, Debug)]
pub struct RenamingTable {
    /// `map[warp][reg]`
    map: Vec<[Option<PhysReg>; MAX_REGS_PER_THREAD]>,
    mapped_per_warp: Vec<usize>,
    stats: RenamingStats,
    /// Last physical register each `(warp, reg)` was mapped to.
    /// Trace-only history: written by [`RenamingTable::map_traced`]
    /// with an enabled sink, never touched on the untraced path.
    /// Allocated lazily on the first traced mapping — untraced runs
    /// (the common case) never pay the
    /// `warp_slots × MAX_REGS_PER_THREAD` footprint per SM.
    history: Vec<[Option<PhysReg>; MAX_REGS_PER_THREAD]>,
}

impl RenamingTable {
    /// Creates a table for `warp_slots` warp contexts.
    pub fn new(warp_slots: usize) -> RenamingTable {
        RenamingTable {
            map: vec![[None; MAX_REGS_PER_THREAD]; warp_slots],
            mapped_per_warp: vec![0; warp_slots],
            stats: RenamingStats::default(),
            history: Vec::new(),
        }
    }

    /// Number of warp slots.
    pub fn warp_slots(&self) -> usize {
        self.map.len()
    }

    /// Looks up the physical register mapped to `(warp, reg)`,
    /// counting a table access.
    pub fn lookup(&mut self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        self.stats.lookups += 1;
        self.map[warp][reg.index()]
    }

    /// Reads a mapping without counting an access (for statistics and
    /// assertions).
    pub fn peek(&self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        self.map[warp][reg.index()]
    }

    /// Installs a mapping. The slot must be unmapped (the register
    /// file releases before remapping); this internal invariant is
    /// checked with a `debug_assert!` only, so release builds on a
    /// faulted machine degrade instead of aborting.
    pub fn map(&mut self, warp: usize, reg: ArchReg, phys: PhysReg) {
        self.stats.updates += 1;
        let slot = &mut self.map[warp][reg.index()];
        debug_assert!(
            slot.is_none(),
            "warp {warp} {reg} is already mapped to {:?}",
            slot.unwrap()
        );
        if slot.is_none() {
            self.mapped_per_warp[warp] += 1;
        }
        *slot = Some(phys);
    }

    /// Overwrites an existing mapping in place, returning the
    /// previous physical register. Used only by the fault-injection
    /// plane to model renaming-table corruption; returns `None` (and
    /// changes nothing) when the slot is unmapped.
    pub fn corrupt(&mut self, warp: usize, reg: ArchReg, phys: PhysReg) -> Option<PhysReg> {
        let slot = &mut self.map[warp][reg.index()];
        let old = (*slot)?;
        *slot = Some(phys);
        Some(old)
    }

    /// [`RenamingTable::map`], emitting a [`TraceKind::RegRename`]
    /// event. `old_phys` is the physical register this name was last
    /// mapped to (a genuine rename after release + reallocation), or
    /// [`NO_PHYS`] for a first-time binding.
    pub fn map_traced(
        &mut self,
        warp: usize,
        reg: ArchReg,
        phys: PhysReg,
        now: u64,
        sm: u16,
        sink: &mut Sink,
    ) {
        self.map(warp, reg, phys);
        if sink.enabled() {
            if self.history.is_empty() {
                self.history = vec![[None; MAX_REGS_PER_THREAD]; self.map.len()];
            }
            let old = self.history[warp][reg.index()];
            sink.emit(TraceEvent::warp_event(
                now,
                sm,
                warp,
                TraceKind::RegRename {
                    reg: reg.index() as u16,
                    old_phys: old.map_or(NO_PHYS, |p| p.index() as u32),
                    new_phys: phys.index() as u32,
                },
            ));
            self.history[warp][reg.index()] = Some(phys);
        }
    }

    /// Removes a mapping, returning the freed physical register.
    /// Releasing an unmapped register is a no-op (the hardware treats
    /// spurious `pbr` releases as idempotent).
    pub fn release(&mut self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        let slot = &mut self.map[warp][reg.index()];
        let freed = slot.take();
        if freed.is_some() {
            self.stats.updates += 1;
            self.mapped_per_warp[warp] -= 1;
        }
        freed
    }

    /// Removes every mapping of a warp (CTA/warp completion),
    /// returning the freed physical registers.
    pub fn release_warp(&mut self, warp: usize) -> Vec<PhysReg> {
        let mut freed = Vec::with_capacity(self.mapped_per_warp[warp]);
        for slot in self.map[warp].iter_mut() {
            if let Some(p) = slot.take() {
                freed.push(p);
            }
        }
        self.stats.updates += freed.len() as u64;
        self.mapped_per_warp[warp] = 0;
        freed
    }

    /// Number of live mappings for one warp.
    pub fn mapped_count(&self, warp: usize) -> usize {
        self.mapped_per_warp[warp]
    }

    /// Total live mappings.
    pub fn total_mapped(&self) -> usize {
        self.mapped_per_warp.iter().sum()
    }

    /// Access counters.
    pub fn stats(&self) -> RenamingStats {
        self.stats
    }

    /// Serializes the table for a checkpoint frame. The lazily
    /// allocated trace history round-trips faithfully: an untraced
    /// table restores with no history footprint.
    pub fn encode(&self, e: &mut Enc) {
        e.usize(self.map.len());
        for row in &self.map {
            encode_phys_row(e, row);
        }
        for &m in &self.mapped_per_warp {
            e.usize(m);
        }
        e.u64(self.stats.lookups);
        e.u64(self.stats.updates);
        e.bool(!self.history.is_empty());
        for row in &self.history {
            encode_phys_row(e, row);
        }
    }

    /// Rebuilds a table written by [`RenamingTable::encode`].
    ///
    /// # Errors
    ///
    /// Rejects streams whose slot count disagrees with `warp_slots`.
    pub fn decode(d: &mut Dec<'_>, warp_slots: usize) -> Result<RenamingTable, WireError> {
        if d.usize()? != warp_slots {
            return Err(WireError::Invalid("renaming table slot count"));
        }
        let mut t = RenamingTable::new(warp_slots);
        for row in t.map.iter_mut() {
            *row = decode_phys_row(d)?;
        }
        for m in t.mapped_per_warp.iter_mut() {
            *m = d.usize()?;
        }
        t.stats.lookups = d.u64()?;
        t.stats.updates = d.u64()?;
        if d.bool()? {
            t.history = Vec::with_capacity(warp_slots);
            for _ in 0..warp_slots {
                t.history.push(decode_phys_row(d)?);
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_release_cycle() {
        let mut t = RenamingTable::new(4);
        let (w, r, p) = (2, ArchReg::R5, PhysReg::new(77));
        assert_eq!(t.lookup(w, r), None);
        t.map(w, r, p);
        assert_eq!(t.lookup(w, r), Some(p));
        assert_eq!(t.mapped_count(w), 1);
        assert_eq!(t.release(w, r), Some(p));
        assert_eq!(t.lookup(w, r), None);
        assert_eq!(t.mapped_count(w), 0);
    }

    #[test]
    fn release_is_idempotent() {
        let mut t = RenamingTable::new(1);
        t.map(0, ArchReg::R0, PhysReg::new(1));
        assert!(t.release(0, ArchReg::R0).is_some());
        assert!(t.release(0, ArchReg::R0).is_none());
        assert!(t.release(0, ArchReg::R7).is_none());
    }

    // the double-map invariant is a debug_assert! so faulted release
    // builds degrade gracefully; check it only where it's compiled in
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut t = RenamingTable::new(1);
        t.map(0, ArchReg::R0, PhysReg::new(1));
        t.map(0, ArchReg::R0, PhysReg::new(2));
    }

    #[test]
    fn corrupt_rewrites_only_mapped_slots() {
        let mut t = RenamingTable::new(1);
        assert_eq!(t.corrupt(0, ArchReg::R0, PhysReg::new(9)), None);
        t.map(0, ArchReg::R0, PhysReg::new(1));
        assert_eq!(
            t.corrupt(0, ArchReg::R0, PhysReg::new(9)),
            Some(PhysReg::new(1))
        );
        assert_eq!(t.peek(0, ArchReg::R0), Some(PhysReg::new(9)));
        assert_eq!(t.mapped_count(0), 1, "corruption is content-only");
    }

    #[test]
    fn warps_are_independent() {
        let mut t = RenamingTable::new(3);
        t.map(0, ArchReg::R1, PhysReg::new(10));
        t.map(1, ArchReg::R1, PhysReg::new(20));
        assert_eq!(t.lookup(0, ArchReg::R1), Some(PhysReg::new(10)));
        assert_eq!(t.lookup(1, ArchReg::R1), Some(PhysReg::new(20)));
        assert_eq!(t.total_mapped(), 2);
    }

    #[test]
    fn release_warp_frees_everything() {
        let mut t = RenamingTable::new(2);
        for i in 0..5u8 {
            t.map(1, ArchReg::new(i), PhysReg::new(100 + u16::from(i)));
        }
        let mut freed = t.release_warp(1);
        freed.sort();
        assert_eq!(freed.len(), 5);
        assert_eq!(t.mapped_count(1), 0);
        assert_eq!(t.release_warp(1), Vec::new());
    }

    #[test]
    fn map_traced_reports_rename_chains() {
        let mut sink = Sink::ring(8);
        let mut t = RenamingTable::new(2);
        t.map_traced(0, ArchReg::R3, PhysReg::new(7), 1, 0, &mut sink);
        assert_eq!(t.release(0, ArchReg::R3), Some(PhysReg::new(7)));
        t.map_traced(0, ArchReg::R3, PhysReg::new(19), 5, 0, &mut sink);
        let events = sink.into_events();
        assert_eq!(
            events[0].kind,
            TraceKind::RegRename {
                reg: 3,
                old_phys: NO_PHYS,
                new_phys: 7
            }
        );
        assert_eq!(
            events[1].kind,
            TraceKind::RegRename {
                reg: 3,
                old_phys: 7,
                new_phys: 19
            }
        );
    }

    #[test]
    fn history_allocates_only_for_enabled_sinks() {
        let mut t = RenamingTable::new(48);
        assert!(t.history.is_empty(), "untraced construction is free");
        let mut noop = Sink::Noop;
        t.map_traced(0, ArchReg::R1, PhysReg::new(1), 0, 0, &mut noop);
        assert!(t.history.is_empty(), "disabled sink never allocates");
        let mut ring = Sink::ring(4);
        t.map_traced(1, ArchReg::R1, PhysReg::new(2), 0, 0, &mut ring);
        assert_eq!(t.history.len(), 48, "first traced map allocates");
    }

    #[test]
    fn snapshot_round_trips_history_lazily() {
        let mut t = RenamingTable::new(4);
        t.map(1, ArchReg::R2, PhysReg::new(33));
        let _ = t.lookup(1, ArchReg::R2);
        let mut e = Enc::new();
        t.encode(&mut e);
        let bytes = e.into_bytes();
        let r = RenamingTable::decode(&mut Dec::new(&bytes), 4).unwrap();
        assert_eq!(r.peek(1, ArchReg::R2), Some(PhysReg::new(33)));
        assert_eq!(r.mapped_count(1), 1);
        assert_eq!(r.stats(), t.stats());
        assert!(r.history.is_empty(), "untraced table restores lazily");
        // slot-count mismatch is a typed error
        assert!(RenamingTable::decode(&mut Dec::new(&bytes), 5).is_err());
        // a traced table round-trips its history
        let mut sink = Sink::ring(4);
        t.map_traced(0, ArchReg::R1, PhysReg::new(7), 0, 0, &mut sink);
        let mut e2 = Enc::new();
        t.encode(&mut e2);
        let b2 = e2.into_bytes();
        let r2 = RenamingTable::decode(&mut Dec::new(&b2), 4).unwrap();
        assert_eq!(r2.history, t.history);
    }

    #[test]
    fn stats_count_lookups_and_updates() {
        let mut t = RenamingTable::new(1);
        t.map(0, ArchReg::R0, PhysReg::new(0)); // update
        let _ = t.lookup(0, ArchReg::R0); // lookup
        let _ = t.lookup(0, ArchReg::R1); // lookup (miss still reads)
        t.release(0, ArchReg::R0); // update
        t.release(0, ArchReg::R0); // no-op
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.updates, 2);
    }
}
