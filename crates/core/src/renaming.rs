//! The per-SM register renaming table (paper §7.1).
//!
//! The table is indexed by (warp slot, architected register id) and
//! stores a 10-bit physical register id. It is banked four ways so the
//! operand collector can look up several operands concurrently; bank
//! conflicts are the simulator's concern — this module models content
//! and access counting.

use rfv_isa::{ArchReg, PhysReg, MAX_REGS_PER_THREAD};
use rfv_trace::{Sink, TraceEvent, TraceKind};

/// Sentinel `old_phys` in [`TraceKind::RegRename`] events: the
/// architected register had no previously-traced physical mapping.
pub const NO_PHYS: u32 = u32::MAX;

/// Access counters for renaming-table energy accounting.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RenamingStats {
    /// Name lookups (reads of the table).
    pub lookups: u64,
    /// Mapping installs and removals (writes to the table).
    pub updates: u64,
}

/// The renaming table: per-warp architected → physical mappings.
#[derive(Clone, Debug)]
pub struct RenamingTable {
    /// `map[warp][reg]`
    map: Vec<[Option<PhysReg>; MAX_REGS_PER_THREAD]>,
    mapped_per_warp: Vec<usize>,
    stats: RenamingStats,
    /// Last physical register each `(warp, reg)` was mapped to.
    /// Trace-only history: written by [`RenamingTable::map_traced`]
    /// with an enabled sink, never touched on the untraced path.
    /// Allocated lazily on the first traced mapping — untraced runs
    /// (the common case) never pay the
    /// `warp_slots × MAX_REGS_PER_THREAD` footprint per SM.
    history: Vec<[Option<PhysReg>; MAX_REGS_PER_THREAD]>,
}

impl RenamingTable {
    /// Creates a table for `warp_slots` warp contexts.
    pub fn new(warp_slots: usize) -> RenamingTable {
        RenamingTable {
            map: vec![[None; MAX_REGS_PER_THREAD]; warp_slots],
            mapped_per_warp: vec![0; warp_slots],
            stats: RenamingStats::default(),
            history: Vec::new(),
        }
    }

    /// Number of warp slots.
    pub fn warp_slots(&self) -> usize {
        self.map.len()
    }

    /// Looks up the physical register mapped to `(warp, reg)`,
    /// counting a table access.
    pub fn lookup(&mut self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        self.stats.lookups += 1;
        self.map[warp][reg.index()]
    }

    /// Reads a mapping without counting an access (for statistics and
    /// assertions).
    pub fn peek(&self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        self.map[warp][reg.index()]
    }

    /// Installs a mapping. The slot must be unmapped (the register
    /// file releases before remapping); this internal invariant is
    /// checked with a `debug_assert!` only, so release builds on a
    /// faulted machine degrade instead of aborting.
    pub fn map(&mut self, warp: usize, reg: ArchReg, phys: PhysReg) {
        self.stats.updates += 1;
        let slot = &mut self.map[warp][reg.index()];
        debug_assert!(
            slot.is_none(),
            "warp {warp} {reg} is already mapped to {:?}",
            slot.unwrap()
        );
        if slot.is_none() {
            self.mapped_per_warp[warp] += 1;
        }
        *slot = Some(phys);
    }

    /// Overwrites an existing mapping in place, returning the
    /// previous physical register. Used only by the fault-injection
    /// plane to model renaming-table corruption; returns `None` (and
    /// changes nothing) when the slot is unmapped.
    pub fn corrupt(&mut self, warp: usize, reg: ArchReg, phys: PhysReg) -> Option<PhysReg> {
        let slot = &mut self.map[warp][reg.index()];
        let old = (*slot)?;
        *slot = Some(phys);
        Some(old)
    }

    /// [`RenamingTable::map`], emitting a [`TraceKind::RegRename`]
    /// event. `old_phys` is the physical register this name was last
    /// mapped to (a genuine rename after release + reallocation), or
    /// [`NO_PHYS`] for a first-time binding.
    pub fn map_traced(
        &mut self,
        warp: usize,
        reg: ArchReg,
        phys: PhysReg,
        now: u64,
        sm: u16,
        sink: &mut Sink,
    ) {
        self.map(warp, reg, phys);
        if sink.enabled() {
            if self.history.is_empty() {
                self.history = vec![[None; MAX_REGS_PER_THREAD]; self.map.len()];
            }
            let old = self.history[warp][reg.index()];
            sink.emit(TraceEvent::warp_event(
                now,
                sm,
                warp,
                TraceKind::RegRename {
                    reg: reg.index() as u16,
                    old_phys: old.map_or(NO_PHYS, |p| p.index() as u32),
                    new_phys: phys.index() as u32,
                },
            ));
            self.history[warp][reg.index()] = Some(phys);
        }
    }

    /// Removes a mapping, returning the freed physical register.
    /// Releasing an unmapped register is a no-op (the hardware treats
    /// spurious `pbr` releases as idempotent).
    pub fn release(&mut self, warp: usize, reg: ArchReg) -> Option<PhysReg> {
        let slot = &mut self.map[warp][reg.index()];
        let freed = slot.take();
        if freed.is_some() {
            self.stats.updates += 1;
            self.mapped_per_warp[warp] -= 1;
        }
        freed
    }

    /// Removes every mapping of a warp (CTA/warp completion),
    /// returning the freed physical registers.
    pub fn release_warp(&mut self, warp: usize) -> Vec<PhysReg> {
        let mut freed = Vec::with_capacity(self.mapped_per_warp[warp]);
        for slot in self.map[warp].iter_mut() {
            if let Some(p) = slot.take() {
                freed.push(p);
            }
        }
        self.stats.updates += freed.len() as u64;
        self.mapped_per_warp[warp] = 0;
        freed
    }

    /// Number of live mappings for one warp.
    pub fn mapped_count(&self, warp: usize) -> usize {
        self.mapped_per_warp[warp]
    }

    /// Total live mappings.
    pub fn total_mapped(&self) -> usize {
        self.mapped_per_warp.iter().sum()
    }

    /// Access counters.
    pub fn stats(&self) -> RenamingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_release_cycle() {
        let mut t = RenamingTable::new(4);
        let (w, r, p) = (2, ArchReg::R5, PhysReg::new(77));
        assert_eq!(t.lookup(w, r), None);
        t.map(w, r, p);
        assert_eq!(t.lookup(w, r), Some(p));
        assert_eq!(t.mapped_count(w), 1);
        assert_eq!(t.release(w, r), Some(p));
        assert_eq!(t.lookup(w, r), None);
        assert_eq!(t.mapped_count(w), 0);
    }

    #[test]
    fn release_is_idempotent() {
        let mut t = RenamingTable::new(1);
        t.map(0, ArchReg::R0, PhysReg::new(1));
        assert!(t.release(0, ArchReg::R0).is_some());
        assert!(t.release(0, ArchReg::R0).is_none());
        assert!(t.release(0, ArchReg::R7).is_none());
    }

    // the double-map invariant is a debug_assert! so faulted release
    // builds degrade gracefully; check it only where it's compiled in
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut t = RenamingTable::new(1);
        t.map(0, ArchReg::R0, PhysReg::new(1));
        t.map(0, ArchReg::R0, PhysReg::new(2));
    }

    #[test]
    fn corrupt_rewrites_only_mapped_slots() {
        let mut t = RenamingTable::new(1);
        assert_eq!(t.corrupt(0, ArchReg::R0, PhysReg::new(9)), None);
        t.map(0, ArchReg::R0, PhysReg::new(1));
        assert_eq!(
            t.corrupt(0, ArchReg::R0, PhysReg::new(9)),
            Some(PhysReg::new(1))
        );
        assert_eq!(t.peek(0, ArchReg::R0), Some(PhysReg::new(9)));
        assert_eq!(t.mapped_count(0), 1, "corruption is content-only");
    }

    #[test]
    fn warps_are_independent() {
        let mut t = RenamingTable::new(3);
        t.map(0, ArchReg::R1, PhysReg::new(10));
        t.map(1, ArchReg::R1, PhysReg::new(20));
        assert_eq!(t.lookup(0, ArchReg::R1), Some(PhysReg::new(10)));
        assert_eq!(t.lookup(1, ArchReg::R1), Some(PhysReg::new(20)));
        assert_eq!(t.total_mapped(), 2);
    }

    #[test]
    fn release_warp_frees_everything() {
        let mut t = RenamingTable::new(2);
        for i in 0..5u8 {
            t.map(1, ArchReg::new(i), PhysReg::new(100 + u16::from(i)));
        }
        let mut freed = t.release_warp(1);
        freed.sort();
        assert_eq!(freed.len(), 5);
        assert_eq!(t.mapped_count(1), 0);
        assert_eq!(t.release_warp(1), Vec::new());
    }

    #[test]
    fn map_traced_reports_rename_chains() {
        let mut sink = Sink::ring(8);
        let mut t = RenamingTable::new(2);
        t.map_traced(0, ArchReg::R3, PhysReg::new(7), 1, 0, &mut sink);
        assert_eq!(t.release(0, ArchReg::R3), Some(PhysReg::new(7)));
        t.map_traced(0, ArchReg::R3, PhysReg::new(19), 5, 0, &mut sink);
        let events = sink.into_events();
        assert_eq!(
            events[0].kind,
            TraceKind::RegRename {
                reg: 3,
                old_phys: NO_PHYS,
                new_phys: 7
            }
        );
        assert_eq!(
            events[1].kind,
            TraceKind::RegRename {
                reg: 3,
                old_phys: 7,
                new_phys: 19
            }
        );
    }

    #[test]
    fn history_allocates_only_for_enabled_sinks() {
        let mut t = RenamingTable::new(48);
        assert!(t.history.is_empty(), "untraced construction is free");
        let mut noop = Sink::Noop;
        t.map_traced(0, ArchReg::R1, PhysReg::new(1), 0, 0, &mut noop);
        assert!(t.history.is_empty(), "disabled sink never allocates");
        let mut ring = Sink::ring(4);
        t.map_traced(1, ArchReg::R1, PhysReg::new(2), 0, 0, &mut ring);
        assert_eq!(t.history.len(), 48, "first traced map allocates");
    }

    #[test]
    fn stats_count_lookups_and_updates() {
        let mut t = RenamingTable::new(1);
        t.map(0, ArchReg::R0, PhysReg::new(0)); // update
        let _ = t.lookup(0, ArchReg::R0); // lookup
        let _ = t.lookup(0, ArchReg::R1); // lookup (miss still reads)
        t.release(0, ArchReg::R0); // update
        t.release(0, ArchReg::R0); // no-op
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.updates, 2);
    }
}
