//! The release flag cache (paper §7.2): a tiny direct-mapped cache of
//! `pir` payloads, shared across warps, that eliminates repeated
//! fetch/decode of metadata instructions.
//!
//! Warps within a CTA execute the same code close together in time, so
//! one warp's `pir` fetch fills the cache and later warps hit. Each
//! entry stores the 54-bit flag payload tagged by the `pir`'s PC; ten
//! entries (68 B total) capture almost all locality (Figure 13).

use rfv_trace::{Dec, Enc, Sink, TraceEvent, TraceKind, WireError};

/// Access statistics for the release flag cache.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct FlagCacheStats {
    /// Probes that hit (the `pir` fetch/decode was skipped).
    pub hits: u64,
    /// Probes that missed (the `pir` was fetched from the instruction
    /// cache and decoded).
    pub misses: u64,
}

impl FlagCacheStats {
    /// Total probes.
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when never probed.
    pub fn hit_rate(&self) -> f64 {
        if self.probes() == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes() as f64
        }
    }
}

/// A direct-mapped release flag cache.
///
/// With zero entries every probe misses, modelling the
/// no-flag-cache configuration (Figure 13's `Dynamic-0`).
#[derive(Clone, Debug)]
pub struct ReleaseFlagCache {
    /// Tag store: the PC of the `pir` cached in each entry.
    tags: Vec<Option<usize>>,
    stats: FlagCacheStats,
}

impl ReleaseFlagCache {
    /// Creates a cache with `entries` slots.
    pub fn new(entries: usize) -> ReleaseFlagCache {
        ReleaseFlagCache {
            tags: vec![None; entries],
            stats: FlagCacheStats::default(),
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.tags.len()
    }

    /// Probes the cache for the `pir` at `pc`; on a miss the entry is
    /// filled (the hardware fetches and decodes the `pir`, then stores
    /// its payload). Returns whether the probe hit.
    pub fn probe_and_fill(&mut self, pc: usize) -> bool {
        if self.tags.is_empty() {
            self.stats.misses += 1;
            return false;
        }
        let idx = pc % self.tags.len();
        if self.tags[idx] == Some(pc) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            self.tags[idx] = Some(pc);
            false
        }
    }

    /// [`ReleaseFlagCache::probe_and_fill`], emitting a
    /// [`TraceKind::FlagCacheHit`] or [`TraceKind::FlagCacheMiss`]
    /// event attributed to the probing warp.
    pub fn probe_and_fill_traced(
        &mut self,
        pc: usize,
        now: u64,
        sm: u16,
        warp: usize,
        sink: &mut Sink,
    ) -> bool {
        let hit = self.probe_and_fill(pc);
        if sink.enabled() {
            let kind = if hit {
                TraceKind::FlagCacheHit { pc: pc as u32 }
            } else {
                TraceKind::FlagCacheMiss { pc: pc as u32 }
            };
            sink.emit(TraceEvent::warp_event(now, sm, warp, kind));
        }
        hit
    }

    /// Fault injection only: records a *stale* hit for the `pir` at
    /// `pc` — the probe counts as a hit and the tag is installed as
    /// if a fill had happened, even though nothing was ever decoded.
    /// Models serving stale metadata to the decoder. Emits a
    /// [`TraceKind::FlagCacheHit`] like a genuine hit.
    pub fn force_hit_traced(&mut self, pc: usize, now: u64, sm: u16, warp: usize, sink: &mut Sink) {
        self.stats.hits += 1;
        if !self.tags.is_empty() {
            let idx = pc % self.tags.len();
            self.tags[idx] = Some(pc);
        }
        if sink.enabled() {
            sink.emit(TraceEvent::warp_event(
                now,
                sm,
                warp,
                TraceKind::FlagCacheHit { pc: pc as u32 },
            ));
        }
    }

    /// Probes without filling (used by the fetch stage to decide
    /// whether to skip the instruction-cache fetch).
    pub fn probe(&self, pc: usize) -> bool {
        if self.tags.is_empty() {
            return false;
        }
        self.tags[pc % self.tags.len()] == Some(pc)
    }

    /// Invalidates all entries (kernel switch).
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Access statistics.
    pub fn stats(&self) -> FlagCacheStats {
        self.stats
    }

    /// Serializes the tag store and counters for a checkpoint frame.
    pub fn encode(&self, e: &mut Enc) {
        e.usize(self.tags.len());
        for t in &self.tags {
            e.opt_u64(t.map(|pc| pc as u64));
        }
        e.u64(self.stats.hits);
        e.u64(self.stats.misses);
    }

    /// Rebuilds a cache written by [`ReleaseFlagCache::encode`].
    ///
    /// # Errors
    ///
    /// Rejects streams whose entry count disagrees with `entries`.
    pub fn decode(d: &mut Dec<'_>, entries: usize) -> Result<ReleaseFlagCache, WireError> {
        if d.usize()? != entries {
            return Err(WireError::Invalid("flag cache entry count"));
        }
        let mut c = ReleaseFlagCache::new(entries);
        for t in c.tags.iter_mut() {
            *t = match d.opt_u64()? {
                None => None,
                Some(v) => {
                    Some(usize::try_from(v).map_err(|_| WireError::Invalid("flag cache tag"))?)
                }
            };
        }
        c.stats.hits = d.u64()?;
        c.stats.misses = d.u64()?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_probe_misses_then_hits() {
        let mut c = ReleaseFlagCache::new(10);
        assert!(!c.probe_and_fill(42));
        assert!(c.probe_and_fill(42));
        assert!(c.probe_and_fill(42));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflicting_pcs_evict() {
        let mut c = ReleaseFlagCache::new(10);
        assert!(!c.probe_and_fill(3));
        assert!(!c.probe_and_fill(13)); // same index, different tag
        assert!(!c.probe_and_fill(3)); // evicted
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn zero_entry_cache_always_misses() {
        let mut c = ReleaseFlagCache::new(0);
        for _ in 0..5 {
            assert!(!c.probe_and_fill(7));
        }
        assert_eq!(c.stats().hit_rate(), 0.0);
        assert_eq!(c.stats().misses, 5);
    }

    #[test]
    fn distinct_indices_coexist() {
        let mut c = ReleaseFlagCache::new(4);
        for pc in 0..4 {
            c.probe_and_fill(pc);
        }
        for pc in 0..4 {
            assert!(c.probe(pc));
        }
        assert_eq!(c.stats().probes(), 4);
    }

    #[test]
    fn flush_clears_tags() {
        let mut c = ReleaseFlagCache::new(4);
        c.probe_and_fill(1);
        c.flush();
        assert!(!c.probe(1));
    }

    #[test]
    fn traced_probe_emits_hit_and_miss_events() {
        let mut sink = Sink::ring(8);
        let mut c = ReleaseFlagCache::new(4);
        assert!(!c.probe_and_fill_traced(9, 100, 1, 5, &mut sink));
        assert!(c.probe_and_fill_traced(9, 101, 1, 6, &mut sink));
        let events = sink.into_events();
        assert_eq!(events[0].kind, TraceKind::FlagCacheMiss { pc: 9 });
        assert_eq!(events[1].kind, TraceKind::FlagCacheHit { pc: 9 });
        assert_eq!((events[1].sm, events[1].warp), (1, 6));
        assert_eq!(c.stats().probes(), 2);
    }

    #[test]
    fn snapshot_round_trips_tags_and_stats() {
        let mut c = ReleaseFlagCache::new(4);
        c.probe_and_fill(9);
        c.probe_and_fill(9);
        let mut e = Enc::new();
        c.encode(&mut e);
        let bytes = e.into_bytes();
        let mut r = ReleaseFlagCache::decode(&mut Dec::new(&bytes), 4).unwrap();
        assert_eq!(r.stats(), c.stats());
        assert!(r.probe_and_fill(9), "restored tag still hits");
        assert!(ReleaseFlagCache::decode(&mut Dec::new(&bytes), 10).is_err());
    }

    #[test]
    fn hit_rate_math() {
        let mut c = ReleaseFlagCache::new(2);
        c.probe_and_fill(0);
        c.probe_and_fill(0);
        c.probe_and_fill(0);
        c.probe_and_fill(0);
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-12);
    }
}
