//! CTA-level register throttling for GPU-shrink (paper §8.1).
//!
//! With an under-provisioned physical register file, unconstrained
//! allocation could leave every resident CTA short of registers and
//! deadlock the SM. The warp scheduler therefore tracks, per CTA, a
//! *register balance counter* `C − k_i` (worst-case registers the CTA
//! may still demand: `C` = registers/warp × warps/CTA, `k_i` =
//! registers currently assigned). When the free-register pool drops to
//! the point where not even the closest-to-finished CTA is guaranteed
//! to complete, the scheduler restricts issue to the CTA with the
//! minimum balance until releases replenish the pool.

use rfv_trace::{Dec, Enc, Sink, TraceEvent, TraceKind, WireError};

/// The scheduler's decision for this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThrottleDecision {
    /// Any warp may issue.
    Unrestricted,
    /// Only warps of this CTA slot may issue instructions that can
    /// allocate registers.
    OnlyCta(usize),
}

#[derive(Clone, Copy, Debug)]
struct CtaBalance {
    budget: usize,
    assigned: usize,
}

/// Per-CTA register balance counters (eight suffice in the baseline:
/// at most eight CTAs run concurrently per SM).
#[derive(Clone, Debug)]
pub struct CtaThrottle {
    slots: Vec<Option<CtaBalance>>,
    /// Times the throttle restricted issue (for statistics).
    restrictions: u64,
}

impl CtaThrottle {
    /// Creates counters for `max_ctas` CTA slots.
    pub fn new(max_ctas: usize) -> CtaThrottle {
        CtaThrottle {
            slots: vec![None; max_ctas],
            restrictions: 0,
        }
    }

    /// Registers a CTA launch with worst-case demand `budget`
    /// (`C = regs/warp × warps/CTA`). The slot must be free — an
    /// internal scheduler invariant checked with `debug_assert!`
    /// only; in release builds a double launch overwrites the slot
    /// rather than aborting.
    pub fn launch(&mut self, cta_slot: usize, budget: usize) {
        debug_assert!(
            self.slots[cta_slot].is_none(),
            "CTA slot {cta_slot} already occupied"
        );
        self.slots[cta_slot] = Some(CtaBalance {
            budget,
            assigned: 0,
        });
    }

    /// [`CtaThrottle::launch`], emitting a
    /// [`TraceKind::ThrottleAdmit`] event with the admitted budget.
    pub fn launch_traced(
        &mut self,
        cta_slot: usize,
        budget: usize,
        now: u64,
        sm: u16,
        sink: &mut Sink,
    ) {
        self.launch(cta_slot, budget);
        if sink.enabled() {
            sink.emit(TraceEvent::sm_event(
                now,
                sm,
                TraceKind::ThrottleAdmit {
                    cta: cta_slot as u32,
                    budget: budget as u32,
                },
            ));
        }
    }

    /// Removes a completed CTA.
    pub fn retire(&mut self, cta_slot: usize) {
        self.slots[cta_slot] = None;
    }

    /// Notes a register allocated to a CTA.
    pub fn on_alloc(&mut self, cta_slot: usize) {
        if let Some(b) = &mut self.slots[cta_slot] {
            b.assigned += 1;
        }
    }

    /// Notes a register released by a CTA.
    pub fn on_release(&mut self, cta_slot: usize) {
        if let Some(b) = &mut self.slots[cta_slot] {
            b.assigned = b.assigned.saturating_sub(1);
        }
    }

    /// [`CtaThrottle::on_alloc`], emitting a
    /// [`TraceKind::ThrottleBalance`] event with the updated
    /// `C − k_i` counter.
    pub fn on_alloc_traced(&mut self, cta_slot: usize, now: u64, sm: u16, sink: &mut Sink) {
        self.on_alloc(cta_slot);
        self.emit_balance(cta_slot, now, sm, sink);
    }

    /// [`CtaThrottle::on_release`], emitting a
    /// [`TraceKind::ThrottleBalance`] event with the updated
    /// `C − k_i` counter.
    pub fn on_release_traced(&mut self, cta_slot: usize, now: u64, sm: u16, sink: &mut Sink) {
        self.on_release(cta_slot);
        self.emit_balance(cta_slot, now, sm, sink);
    }

    fn emit_balance(&self, cta_slot: usize, now: u64, sm: u16, sink: &mut Sink) {
        if sink.enabled() {
            if let Some(bal) = self.balance(cta_slot) {
                sink.emit(TraceEvent::sm_event(
                    now,
                    sm,
                    TraceKind::ThrottleBalance {
                        cta: cta_slot as u32,
                        balance: bal as i64,
                    },
                ));
            }
        }
    }

    /// The balance `C − k_i` of a resident CTA (saturating at zero:
    /// a CTA may transiently hold more than its compiler-declared
    /// worst case when exempt static allocations are counted).
    pub fn balance(&self, cta_slot: usize) -> Option<usize> {
        self.slots[cta_slot].map(|b| b.budget.saturating_sub(b.assigned))
    }

    /// The resident CTA with the minimum balance (ties broken by the
    /// lowest slot).
    pub fn min_balance_cta(&self) -> Option<(usize, usize)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|b| (i, b.budget.saturating_sub(b.assigned))))
            .min_by_key(|&(i, bal)| (bal, i))
    }

    /// Decides whether issue must be restricted given the free
    /// physical register count (paper §8.1).
    pub fn decide(&mut self, free_regs: usize) -> ThrottleDecision {
        match self.min_balance_cta() {
            Some((slot, bal)) if free_regs <= bal => {
                self.restrictions += 1;
                ThrottleDecision::OnlyCta(slot)
            }
            _ => ThrottleDecision::Unrestricted,
        }
    }

    /// [`CtaThrottle::decide`], emitting a
    /// [`TraceKind::ThrottleDeny`] event when issue is restricted.
    pub fn decide_traced(
        &mut self,
        free_regs: usize,
        now: u64,
        sm: u16,
        sink: &mut Sink,
    ) -> ThrottleDecision {
        let decision = self.decide(free_regs);
        if sink.enabled() {
            if let ThrottleDecision::OnlyCta(slot) = decision {
                sink.emit(TraceEvent::sm_event(
                    now,
                    sm,
                    TraceKind::ThrottleDeny {
                        cta: slot as u32,
                        balance: self.balance(slot).unwrap_or(0) as i64,
                    },
                ));
            }
        }
        decision
    }

    /// Number of resident CTAs.
    pub fn resident(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Times the throttle restricted issue.
    pub fn restrictions(&self) -> u64 {
        self.restrictions
    }

    /// Serializes the balance counters for a checkpoint frame.
    pub fn encode(&self, e: &mut Enc) {
        e.usize(self.slots.len());
        for s in &self.slots {
            match s {
                None => e.bool(false),
                Some(b) => {
                    e.bool(true);
                    e.usize(b.budget);
                    e.usize(b.assigned);
                }
            }
        }
        e.u64(self.restrictions);
    }

    /// Rebuilds counters written by [`CtaThrottle::encode`].
    ///
    /// # Errors
    ///
    /// Rejects streams whose slot count disagrees with `max_ctas`.
    pub fn decode(d: &mut Dec<'_>, max_ctas: usize) -> Result<CtaThrottle, WireError> {
        if d.usize()? != max_ctas {
            return Err(WireError::Invalid("throttle slot count"));
        }
        let mut t = CtaThrottle::new(max_ctas);
        for s in t.slots.iter_mut() {
            *s = if d.bool()? {
                Some(CtaBalance {
                    budget: d.usize()?,
                    assigned: d.usize()?,
                })
            } else {
                None
            };
        }
        t.restrictions = d.u64()?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_when_registers_plentiful() {
        let mut t = CtaThrottle::new(8);
        t.launch(0, 100);
        t.launch(1, 100);
        assert_eq!(t.decide(512), ThrottleDecision::Unrestricted);
        assert_eq!(t.resident(), 2);
    }

    #[test]
    fn restricts_to_min_balance_cta() {
        let mut t = CtaThrottle::new(8);
        t.launch(0, 100);
        t.launch(1, 100);
        // CTA 1 already holds 80 registers -> balance 20
        for _ in 0..80 {
            t.on_alloc(1);
        }
        assert_eq!(t.balance(1), Some(20));
        // 15 free < min balance 20 -> restrict to CTA 1
        assert_eq!(t.decide(15), ThrottleDecision::OnlyCta(1));
        assert_eq!(t.restrictions(), 1);
        // 50 free > 20 -> open again
        assert_eq!(t.decide(50), ThrottleDecision::Unrestricted);
    }

    #[test]
    fn releases_restore_balance() {
        let mut t = CtaThrottle::new(2);
        t.launch(0, 10);
        for _ in 0..10 {
            t.on_alloc(0);
        }
        assert_eq!(t.balance(0), Some(0));
        for _ in 0..4 {
            t.on_release(0);
        }
        assert_eq!(t.balance(0), Some(4));
    }

    #[test]
    fn retire_frees_the_slot() {
        let mut t = CtaThrottle::new(2);
        t.launch(0, 10);
        t.retire(0);
        assert_eq!(t.balance(0), None);
        assert_eq!(t.min_balance_cta(), None);
        t.launch(0, 20); // reusable
        assert_eq!(t.balance(0), Some(20));
    }

    #[test]
    fn over_budget_saturates() {
        let mut t = CtaThrottle::new(1);
        t.launch(0, 2);
        for _ in 0..5 {
            t.on_alloc(0);
        }
        assert_eq!(t.balance(0), Some(0));
    }

    #[test]
    fn no_ctas_means_unrestricted() {
        let mut t = CtaThrottle::new(4);
        assert_eq!(t.decide(0), ThrottleDecision::Unrestricted);
    }

    #[test]
    fn traced_variants_emit_throttle_events() {
        let mut sink = Sink::ring(16);
        let mut t = CtaThrottle::new(2);
        t.launch_traced(0, 3, 5, 0, &mut sink);
        t.on_alloc_traced(0, 6, 0, &mut sink);
        t.on_release_traced(0, 7, 0, &mut sink);
        assert_eq!(
            t.decide_traced(1, 8, 0, &mut sink),
            ThrottleDecision::OnlyCta(0)
        );
        assert_eq!(
            t.decide_traced(100, 9, 0, &mut sink),
            ThrottleDecision::Unrestricted
        );
        let events = sink.into_events();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::ThrottleAdmit { cta: 0, budget: 3 },
                TraceKind::ThrottleBalance { cta: 0, balance: 2 },
                TraceKind::ThrottleBalance { cta: 0, balance: 3 },
                TraceKind::ThrottleDeny { cta: 0, balance: 3 },
            ]
        );
    }

    #[test]
    fn snapshot_round_trips_balances() {
        let mut t = CtaThrottle::new(4);
        t.launch(0, 64);
        t.launch(2, 96);
        for _ in 0..50 {
            t.on_alloc(2);
        }
        t.decide(10); // one restriction
        let mut e = Enc::new();
        t.encode(&mut e);
        let bytes = e.into_bytes();
        let mut r = CtaThrottle::decode(&mut Dec::new(&bytes), 4).unwrap();
        assert_eq!(r.balance(0), t.balance(0));
        assert_eq!(r.balance(2), t.balance(2));
        assert_eq!(r.restrictions(), 1);
        assert_eq!(r.decide(10), t.decide(10));
        assert!(CtaThrottle::decode(&mut Dec::new(&bytes), 8).is_err());
    }

    // the slot-free invariant is a debug_assert!, present only in
    // debug builds so faulted release builds degrade gracefully
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_launch_panics() {
        let mut t = CtaThrottle::new(1);
        t.launch(0, 1);
        t.launch(0, 1);
    }
}
