//! Subarray-level power gating (paper §8.2, Figure 8).
//!
//! A whole subarray sleeps behind a single sleep transistor when no
//! live register resides in it. Waking a gated subarray costs
//! `wakeup_cycles`; the gating model tracks, per subarray, when it
//! becomes usable, and integrates subarray-on time for the leakage
//! energy model.

use rfv_trace::{Dec, Enc, Sink, TraceEvent, TraceKind, WireError};

/// Power state of the register file's subarrays.
#[derive(Clone, Debug)]
pub struct SubarrayGating {
    enabled: bool,
    wakeup_cycles: u64,
    /// `ready_at[sa]`: `None` when gated, else the cycle from which
    /// accesses may proceed.
    ready_at: Vec<Option<u64>>,
    /// Integral of powered-on subarrays over time, in subarray-cycles.
    on_integral: u64,
    last_change: u64,
    on_count: usize,
    /// Number of 0→1 power-up transitions (wakeup events).
    wakeups: u64,
}

impl SubarrayGating {
    /// Creates the gating state for `num_subarrays` subarrays.
    ///
    /// With `enabled == false` every subarray is permanently on (the
    /// conventional ungated register file) and `wakeup_cycles` is
    /// ignored.
    pub fn new(num_subarrays: usize, enabled: bool, wakeup_cycles: u64) -> SubarrayGating {
        let ready_at = if enabled {
            vec![None; num_subarrays]
        } else {
            vec![Some(0); num_subarrays]
        };
        SubarrayGating {
            enabled,
            wakeup_cycles,
            ready_at,
            on_integral: 0,
            last_change: 0,
            on_count: if enabled { 0 } else { num_subarrays },
            wakeups: 0,
        }
    }

    fn settle(&mut self, now: u64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.on_integral += self.on_count as u64 * (now - self.last_change);
        self.last_change = now;
    }

    /// Marks a subarray as occupied at `now` (first register allocated
    /// into it). Returns the cycle from which the subarray is usable.
    pub fn note_occupied(&mut self, sa: usize, now: u64) -> u64 {
        if let Some(ready) = self.ready_at[sa] {
            return ready.max(now);
        }
        debug_assert!(self.enabled, "gating disabled implies always-on");
        self.settle(now);
        self.on_count += 1;
        self.wakeups += 1;
        let ready = now + self.wakeup_cycles;
        self.ready_at[sa] = Some(ready);
        ready
    }

    /// [`SubarrayGating::note_occupied`], emitting a
    /// [`TraceKind::GateOn`] event (with the wakeup stall charged)
    /// when the subarray transitions from gated to powered.
    pub fn note_occupied_traced(&mut self, sa: usize, now: u64, sm: u16, sink: &mut Sink) -> u64 {
        let was_on = self.ready_at[sa].is_some();
        let ready = self.note_occupied(sa, now);
        if !was_on && sink.enabled() {
            sink.emit(TraceEvent::sm_event(
                now,
                sm,
                TraceKind::GateOn {
                    subarray: sa as u16,
                    wakeup: ready.saturating_sub(now) as u32,
                },
            ));
        }
        ready
    }

    /// Marks a subarray as emptied at `now` (last register freed); the
    /// subarray is gated off immediately.
    pub fn note_emptied(&mut self, sa: usize, now: u64) {
        if !self.enabled {
            return;
        }
        if self.ready_at[sa].is_some() {
            self.settle(now);
            self.on_count -= 1;
            self.ready_at[sa] = None;
        }
    }

    /// [`SubarrayGating::note_emptied`], emitting a
    /// [`TraceKind::GateOff`] event when the subarray is actually
    /// gated off (gating enabled and previously powered).
    pub fn note_emptied_traced(&mut self, sa: usize, now: u64, sm: u16, sink: &mut Sink) {
        let gated = self.enabled && self.ready_at[sa].is_some();
        self.note_emptied(sa, now);
        if gated && sink.enabled() {
            sink.emit(TraceEvent::sm_event(
                now,
                sm,
                TraceKind::GateOff {
                    subarray: sa as u16,
                },
            ));
        }
    }

    /// Whether the subarray is powered (possibly still waking).
    pub fn is_on(&self, sa: usize) -> bool {
        self.ready_at[sa].is_some()
    }

    /// Subarrays currently powered.
    pub fn on_count(&self) -> usize {
        self.on_count
    }

    /// Total powered-on subarray-cycles up to `now`.
    pub fn on_integral(&mut self, now: u64) -> u64 {
        self.settle(now);
        self.on_integral
    }

    /// Number of wakeup events so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Serializes the power state for a checkpoint frame, including
    /// `last_change` so the restored integral keeps accruing from the
    /// checkpoint cycle (and `settle`'s monotonic-time invariant
    /// holds).
    pub fn encode(&self, e: &mut Enc) {
        e.bool(self.enabled);
        e.u64(self.wakeup_cycles);
        e.usize(self.ready_at.len());
        for r in &self.ready_at {
            e.opt_u64(*r);
        }
        e.u64(self.on_integral);
        e.u64(self.last_change);
        e.usize(self.on_count);
        e.u64(self.wakeups);
    }

    /// Rebuilds gating state written by [`SubarrayGating::encode`].
    ///
    /// # Errors
    ///
    /// Rejects streams whose enable flag, wakeup latency, or subarray
    /// count disagree with the constructor arguments.
    pub fn decode(
        d: &mut Dec<'_>,
        num_subarrays: usize,
        enabled: bool,
        wakeup_cycles: u64,
    ) -> Result<SubarrayGating, WireError> {
        let mut g = SubarrayGating::new(num_subarrays, enabled, wakeup_cycles);
        if d.bool()? != enabled {
            return Err(WireError::Invalid("gating enable flag"));
        }
        if d.u64()? != wakeup_cycles {
            return Err(WireError::Invalid("gating wakeup latency"));
        }
        if d.usize()? != num_subarrays {
            return Err(WireError::Invalid("gating subarray count"));
        }
        for r in g.ready_at.iter_mut() {
            *r = d.opt_u64()?;
        }
        g.on_integral = d.u64()?;
        g.last_change = d.u64()?;
        g.on_count = d.usize()?;
        g.wakeups = d.u64()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_latency_applied_once() {
        let mut g = SubarrayGating::new(16, true, 3);
        assert!(!g.is_on(5));
        assert_eq!(g.note_occupied(5, 100), 103);
        assert!(g.is_on(5));
        // already on: ready immediately
        assert_eq!(g.note_occupied(5, 101), 103);
        assert_eq!(g.note_occupied(5, 200), 200);
        assert_eq!(g.wakeups(), 1);
    }

    #[test]
    fn integral_counts_on_time() {
        let mut g = SubarrayGating::new(4, true, 0);
        g.note_occupied(0, 10);
        g.note_occupied(1, 20);
        g.note_emptied(0, 30);
        // sa0 on 10..30 (20 cycles), sa1 on 20..50 (30 cycles)
        assert_eq!(g.on_integral(50), 20 + 30);
        assert_eq!(g.on_count(), 1);
    }

    #[test]
    fn disabled_gating_is_always_on() {
        let mut g = SubarrayGating::new(4, false, 10);
        assert!(g.is_on(3));
        assert_eq!(g.note_occupied(2, 100), 100, "no wakeup cost");
        g.note_emptied(2, 200);
        assert!(g.is_on(2), "never gated off");
        assert_eq!(g.on_integral(100), 400, "4 subarrays x 100 cycles");
        assert_eq!(g.wakeups(), 0);
    }

    #[test]
    fn empty_then_reoccupy_costs_another_wakeup() {
        let mut g = SubarrayGating::new(2, true, 5);
        g.note_occupied(0, 0);
        g.note_emptied(0, 10);
        assert_eq!(g.note_occupied(0, 20), 25);
        assert_eq!(g.wakeups(), 2);
        assert_eq!(g.on_integral(30), 10 + 10);
    }

    #[test]
    fn traced_variants_emit_gate_events() {
        let mut sink = Sink::ring(16);
        let mut g = SubarrayGating::new(2, true, 5);
        assert_eq!(g.note_occupied_traced(0, 10, 3, &mut sink), 15);
        // already powered: no second GateOn
        g.note_occupied_traced(0, 12, 3, &mut sink);
        g.note_emptied_traced(0, 20, 3, &mut sink);
        // already gated: no second GateOff
        g.note_emptied_traced(0, 21, 3, &mut sink);
        let events = sink.into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].kind,
            TraceKind::GateOn {
                subarray: 0,
                wakeup: 5
            }
        );
        assert_eq!(events[0].sm, 3);
        assert_eq!(events[1].kind, TraceKind::GateOff { subarray: 0 });
        // traced calls through a noop sink behave identically
        let mut g2 = SubarrayGating::new(2, true, 5);
        assert_eq!(g2.note_occupied_traced(0, 10, 0, &mut Sink::Noop), 15);
        assert_eq!(g2.wakeups(), 1);
    }

    #[test]
    fn snapshot_round_trips_integral_and_clock() {
        let mut g = SubarrayGating::new(4, true, 3);
        g.note_occupied(0, 10);
        g.note_occupied(1, 20);
        g.note_emptied(0, 30);
        let mut e = Enc::new();
        g.encode(&mut e);
        let bytes = e.into_bytes();
        let mut r = SubarrayGating::decode(&mut Dec::new(&bytes), 4, true, 3).unwrap();
        assert_eq!(r.on_count(), g.on_count());
        assert_eq!(r.wakeups(), g.wakeups());
        // settle() must not see time running backwards after restore,
        // and the integral keeps accruing identically
        assert_eq!(r.on_integral(50), g.on_integral(50));
        // config disagreement is a typed error
        assert!(SubarrayGating::decode(&mut Dec::new(&bytes), 4, false, 3).is_err());
        assert!(SubarrayGating::decode(&mut Dec::new(&bytes), 8, true, 3).is_err());
        assert!(SubarrayGating::decode(&mut Dec::new(&bytes), 4, true, 5).is_err());
    }

    #[test]
    #[cfg(debug_assertions)] // the guard is a debug_assert!
    #[should_panic(expected = "time went backwards")]
    fn non_monotonic_time_rejected_in_debug() {
        let mut g = SubarrayGating::new(1, true, 0);
        g.note_occupied(0, 10);
        g.note_emptied(0, 5);
    }
}
