//! Register-file invariants under randomized allocate/release churn.

use proptest::prelude::*;

use rfv_core::{CtaThrottle, RegFileConfig, RegisterFile, ThrottleDecision, WriteOutcome};
use rfv_isa::ArchReg;

/// One step of the churn workload.
#[derive(Clone, Copy, Debug)]
enum Op {
    Write { warp: usize, reg: u8 },
    Release { warp: usize, reg: u8 },
    Retire { warp: usize },
}

fn arb_op(warps: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..warps, 0u8..63).prop_map(|(warp, reg)| Op::Write { warp, reg }),
        2 => (0..warps, 0u8..63).prop_map(|(warp, reg)| Op::Release { warp, reg }),
        1 => (0..warps).prop_map(|warp| Op::Retire { warp }),
    ]
}

proptest! {
    /// Conservation: live + free == capacity at every step, the live
    /// count equals the sum of mappings, and subarray occupancy is
    /// consistent with the live count.
    #[test]
    fn churn_conserves_registers(
        ops in proptest::collection::vec(arb_op(8), 1..300),
        shrink in prop_oneof![Just(0usize), Just(50), Just(75)],
    ) {
        let config = if shrink == 0 {
            RegFileConfig::baseline_full()
        } else {
            RegFileConfig::shrunk(shrink)
        };
        let capacity = config.phys_regs;
        let mut rf = RegisterFile::new(config, 8).unwrap();
        let mut now = 0u64;
        for op in ops {
            now += 1;
            match op {
                Op::Write { warp, reg } => {
                    let _ = rf.write(warp, ArchReg::new(reg), now);
                }
                Op::Release { warp, reg } => {
                    rf.release(warp, ArchReg::new(reg), now);
                }
                Op::Retire { warp } => {
                    rf.retire_warp(warp, now);
                }
            }
            prop_assert_eq!(rf.live_count() + rf.free_count(), capacity);
            prop_assert!(rf.stats().peak_live <= capacity);
            // occupied subarrays can hold at most capacity registers
            prop_assert!(rf.subarrays_on() <= 16);
            if rf.live_count() == 0 && rf.config().power_gating {
                prop_assert_eq!(rf.subarrays_on(), 0);
            }
        }
        // retiring everything returns the file to empty
        for warp in 0..8 {
            rf.retire_warp(warp, now + 1);
        }
        prop_assert_eq!(rf.live_count(), 0);
        prop_assert_eq!(rf.free_count(), capacity);
    }

    /// Reads after writes always observe the same physical register
    /// until a release or retirement intervenes.
    #[test]
    fn mapping_is_stable_between_writes(
        regs in proptest::collection::vec(0u8..63, 1..40),
    ) {
        let mut rf = RegisterFile::new(RegFileConfig::baseline_full(), 4).unwrap();
        for (i, &reg) in regs.iter().enumerate() {
            let warp = i % 4;
            let r = ArchReg::new(reg);
            if let WriteOutcome::Mapped { phys, .. } = rf.write(warp, r, i as u64) {
                prop_assert_eq!(rf.read(warp, r), Some(phys));
                // a second write keeps the mapping
                if let WriteOutcome::Mapped { phys: p2, newly_allocated, .. } =
                    rf.write(warp, r, i as u64)
                {
                    prop_assert_eq!(p2, phys);
                    prop_assert!(!newly_allocated);
                }
            }
        }
    }

    /// The throttle's balance arithmetic: k_i tracks alloc/release
    /// pairs and the decision flips exactly at `free <= min balance`.
    #[test]
    fn throttle_balance_arithmetic(
        allocs in proptest::collection::vec(0usize..4, 0..200),
        budget in 50usize..200,
    ) {
        let mut t = CtaThrottle::new(4);
        for c in 0..4 {
            t.launch(c, budget);
        }
        let mut k = [0usize; 4];
        for c in allocs {
            t.on_alloc(c);
            k[c] += 1;
        }
        for (c, &kc) in k.iter().enumerate() {
            prop_assert_eq!(t.balance(c), Some(budget.saturating_sub(kc)));
        }
        let min_bal = (0..4).map(|c| budget.saturating_sub(k[c])).min().unwrap();
        prop_assert_eq!(
            t.decide(min_bal + 1) == ThrottleDecision::Unrestricted,
            true,
            "one register above the minimum balance must stay open"
        );
        if min_bal > 0 {
            prop_assert!(matches!(t.decide(min_bal), ThrottleDecision::OnlyCta(_)));
        }
    }
}

#[test]
fn gating_integral_equals_manual_accounting() {
    let mut rf = RegisterFile::new(RegFileConfig::baseline_full(), 2).unwrap();
    // one register on from cycle 10 to 50: its subarray is on 40 cycles
    let r = ArchReg::R0;
    assert!(matches!(rf.write(0, r, 10), WriteOutcome::Mapped { .. }));
    rf.release(0, r, 50);
    assert_eq!(rf.subarray_on_integral(100), 40);
    // two registers in the same subarray: no double counting
    assert!(matches!(
        rf.write(0, ArchReg::R0, 100),
        WriteOutcome::Mapped { .. }
    ));
    assert!(matches!(
        rf.write(0, ArchReg::R4, 100),
        WriteOutcome::Mapped { .. }
    ));
    rf.release(0, ArchReg::R0, 120);
    rf.release(0, ArchReg::R4, 150);
    assert_eq!(rf.subarray_on_integral(200), 40 + 50);
}

#[test]
fn static_and_dynamic_mappings_do_not_alias() {
    let mut rf = RegisterFile::new(RegFileConfig::baseline_full(), 4).unwrap();
    rf.launch_warp(0, [ArchReg::R0, ArchReg::R1], 0).unwrap();
    let s0 = rf.read(0, ArchReg::R0).unwrap();
    let s1 = rf.read(0, ArchReg::R1).unwrap();
    let WriteOutcome::Mapped { phys: d0, .. } = rf.write(0, ArchReg::R2, 0) else {
        panic!()
    };
    let WriteOutcome::Mapped { phys: d1, .. } = rf.write(1, ArchReg::R2, 0) else {
        panic!()
    };
    let all = [s0, s1, d0, d1];
    for (i, a) in all.iter().enumerate() {
        for b in &all[i + 1..] {
            assert_ne!(a, b, "physical registers must be exclusive");
        }
    }
}

#[test]
fn alloc_failure_reports_and_recovers() {
    // a 75%-shrunk file has 64 registers per bank
    let mut rf = RegisterFile::new(RegFileConfig::shrunk(75), 48).unwrap();
    let mut held = Vec::new();
    // fill warp 0's bank-0 registers (ids ≡ 0 mod 4 for warp 0)
    for id in (0..60u8).step_by(4) {
        for w in (0..48).step_by(4) {
            match rf.write(w, ArchReg::new(id), 0) {
                WriteOutcome::Mapped { .. } => held.push((w, id)),
                WriteOutcome::NoFreeRegister => {}
            }
        }
    }
    assert_eq!(held.len(), 64, "bank 0 holds exactly 64 in the 16 KB file");
    assert!(matches!(
        rf.write(0, ArchReg::new(60), 0),
        WriteOutcome::NoFreeRegister
    ));
    // releasing one register makes the next allocation succeed
    let (w, id) = held[0];
    assert!(rf.release(w, ArchReg::new(id), 1));
    assert!(matches!(
        rf.write(0, ArchReg::new(60), 2),
        WriteOutcome::Mapped { .. }
    ));
}

#[test]
fn failed_static_launch_rolls_back_cleanly() {
    // demand more static registers than the file holds: the failing
    // launch must leave the slot clean and the file unchanged
    let mut rf = RegisterFile::new(RegFileConfig::shrunk(75), 48).unwrap();
    let many: Vec<ArchReg> = (0..48u8).map(ArchReg::new).collect();
    let mut launched = 0;
    let mut failed_at = None;
    for w in 0..48 {
        match rf.launch_warp(w, many.iter().copied(), 0) {
            Ok(()) => launched += 1,
            Err(_) => {
                failed_at = Some(w);
                break;
            }
        }
    }
    let w = failed_at.expect("a 16 KB file cannot hold 48 warps x 48 regs");
    assert_eq!(
        rf.live_count(),
        launched * 48,
        "failed launch must not leak"
    );
    // the failed slot is reusable with a smaller set
    rf.retire_warp(0, 1); // make room
    assert!(rf.launch_warp(w, (0..4u8).map(ArchReg::new), 2).is_ok());
    assert_eq!(rf.live_count(), (launched - 1) * 48 + 4);
}

/// One step of the CTA-throttle churn.
#[derive(Clone, Copy, Debug)]
enum ThrottleOp {
    Launch { slot: usize, budget: usize },
    Alloc { slot: usize },
    Release { slot: usize },
    Retire { slot: usize },
    Decide { free: usize },
}

fn arb_throttle_op(slots: usize) -> impl Strategy<Value = ThrottleOp> {
    prop_oneof![
        2 => (0..slots, 1usize..200).prop_map(|(slot, budget)| ThrottleOp::Launch { slot, budget }),
        4 => (0..slots).prop_map(|slot| ThrottleOp::Alloc { slot }),
        4 => (0..slots).prop_map(|slot| ThrottleOp::Release { slot }),
        1 => (0..slots).prop_map(|slot| ThrottleOp::Retire { slot }),
        2 => (0usize..600).prop_map(|free| ThrottleOp::Decide { free }),
    ]
}

proptest! {
    /// The §8.1 balance counters `C − k_i` must never underflow (wrap
    /// past zero) regardless of how allocates and releases interleave
    /// — including releases outnumbering allocates (early release of
    /// registers counted against exempt static allocations) and
    /// allocates overshooting the declared budget. At every step a
    /// resident CTA's balance stays within `[0, budget]` and the
    /// throttle's min-balance choice refers to a resident CTA.
    #[test]
    fn throttle_balances_never_underflow(
        ops in proptest::collection::vec(arb_throttle_op(8), 1..400),
    ) {
        let mut t = CtaThrottle::new(8);
        let mut budgets = [None::<usize>; 8];
        for op in ops {
            match op {
                ThrottleOp::Launch { slot, budget } => {
                    // occupied slots keep their CTA; relaunch is an SM
                    // bug, not a throttle scenario
                    if budgets[slot].is_none() {
                        t.launch(slot, budget);
                        budgets[slot] = Some(budget);
                    }
                }
                ThrottleOp::Alloc { slot } => t.on_alloc(slot),
                ThrottleOp::Release { slot } => t.on_release(slot),
                ThrottleOp::Retire { slot } => {
                    t.retire(slot);
                    budgets[slot] = None;
                }
                ThrottleOp::Decide { free } => {
                    if let ThrottleDecision::OnlyCta(slot) = t.decide(free) {
                        prop_assert!(
                            budgets[slot].is_some(),
                            "throttle restricted to a vacated slot {slot}"
                        );
                    }
                }
            }
            for (slot, budget) in budgets.iter().enumerate() {
                match (*budget, t.balance(slot)) {
                    (Some(budget), Some(bal)) => prop_assert!(
                        bal <= budget,
                        "slot {slot} balance {bal} exceeds budget {budget} (underflow?)"
                    ),
                    (None, None) => {}
                    (expect, got) => prop_assert!(
                        false,
                        "slot {slot} residency mismatch: budget {expect:?}, balance {got:?}"
                    ),
                }
            }
            prop_assert_eq!(
                t.resident(),
                budgets.iter().filter(|b| b.is_some()).count()
            );
            if let Some((slot, bal)) = t.min_balance_cta() {
                prop_assert!(budgets[slot].is_some());
                prop_assert!(bal <= budgets[slot].unwrap());
            }
        }
    }
}
