//! Property tests for the ISA's three serialization surfaces:
//! metadata words, binary instruction words, and assembly text.

use proptest::prelude::*;

use rfv_isa::binary::{decode_instr, encode_instr};
use rfv_isa::instr::{Instr, Operand, PredGuard};
use rfv_isa::meta::{self, MetaInstr, Pbr, Pir, ReleaseFlags};
use rfv_isa::op::{Cond, Opcode, Special};
use rfv_isa::reg::{ArchReg, Pred};

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    (0u8..63).prop_map(ArchReg::new)
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    (0u8..4).prop_map(Pred::new)
}

fn arb_flags() -> impl Strategy<Value = ReleaseFlags> {
    (0u8..8).prop_map(ReleaseFlags::from_bits)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
        Just(Cond::Eq),
        Just(Cond::Ne),
    ]
}

fn arb_special() -> impl Strategy<Value = Special> {
    prop_oneof![
        Just(Special::TidX),
        Just(Special::CtaIdX),
        Just(Special::NTidX),
        Just(Special::NCtaIdX),
        Just(Special::LaneId),
        Just(Special::WarpId),
    ]
}

proptest! {
    /// `pir` payloads round-trip through the 64-bit word for any flag
    /// combination.
    #[test]
    fn pir_word_roundtrips(flags in proptest::collection::vec(arb_flags(), 18)) {
        let mut pir = Pir::new();
        for (i, f) in flags.iter().enumerate() {
            pir.set_flags(i, *f);
        }
        match meta::decode(pir.encode()).unwrap() {
            MetaInstr::Pir(back) => prop_assert_eq!(back, pir),
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }

    /// `pbr` register lists round-trip for any set of up to nine
    /// registers.
    #[test]
    fn pbr_word_roundtrips(regs in proptest::collection::vec(arb_reg(), 0..=9)) {
        let pbr = Pbr::from_regs(regs.clone()).unwrap();
        match meta::decode(pbr.encode()).unwrap() {
            MetaInstr::Pbr(back) => prop_assert_eq!(back.regs(), regs.as_slice()),
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }

    /// Arbitrary three-operand ALU instructions round-trip through the
    /// binary word encoding, with any guard and at most one immediate.
    #[test]
    fn alu_instr_word_roundtrips(
        dst in arb_reg(),
        a in arb_reg(),
        b in arb_reg(),
        imm in any::<i32>(),
        imm_slot in 0usize..3,
        guard in proptest::option::of((arb_pred(), any::<bool>())),
        use_imad in any::<bool>(),
    ) {
        let mut i = Instr::new(if use_imad { Opcode::Imad } else { Opcode::Iadd });
        i.dst = Some(dst);
        let nsrc = if use_imad { 3 } else { 2 };
        for slot in 0..nsrc {
            if slot == imm_slot % nsrc {
                i.srcs.push(Operand::Imm(imm));
            } else if slot == 0 {
                i.srcs.push(Operand::Reg(a));
            } else {
                i.srcs.push(Operand::Reg(b));
            }
        }
        i.guard = guard.map(|(pred, negated)| PredGuard { pred, negated });
        let (word, ext) = encode_instr(0, &i).unwrap();
        let back = decode_instr(0, word, ext).unwrap();
        prop_assert_eq!(back, i);
    }

    /// Compare and special-register variants survive the variant-bits
    /// encoding.
    #[test]
    fn variant_instrs_roundtrip(
        cond in arb_cond(),
        special in arb_special(),
        pdst in arb_pred(),
        src in arb_reg(),
        imm in any::<i32>(),
    ) {
        let mut setp = Instr::new(Opcode::Isetp(cond));
        setp.pdst = Some(pdst);
        setp.srcs = vec![Operand::Reg(src), Operand::Imm(imm)];
        let (w, e) = encode_instr(0, &setp).unwrap();
        prop_assert_eq!(decode_instr(0, w, e).unwrap(), setp);

        let mut s2r = Instr::new(Opcode::S2r(special));
        s2r.dst = Some(src);
        let (w, e) = encode_instr(0, &s2r).unwrap();
        prop_assert_eq!(decode_instr(0, w, e).unwrap(), s2r);
    }

    /// Memory instructions carry offsets and branch targets through
    /// the extension word.
    #[test]
    fn mem_and_branch_roundtrip(
        addr in arb_reg(),
        data in arb_reg(),
        dst in arb_reg(),
        offset in any::<i32>(),
        target in 0usize..1_000_000,
        guard in proptest::option::of(arb_pred()),
    ) {
        let mut ld = Instr::new(Opcode::Ldg);
        ld.dst = Some(dst);
        ld.srcs = vec![Operand::Reg(addr)];
        ld.mem_offset = offset;
        let (w, e) = encode_instr(0, &ld).unwrap();
        prop_assert_eq!(decode_instr(0, w, e).unwrap(), ld);

        let mut st = Instr::new(Opcode::Stl);
        st.srcs = vec![Operand::Reg(addr), Operand::Reg(data)];
        st.mem_offset = offset;
        let (w, e) = encode_instr(0, &st).unwrap();
        prop_assert_eq!(decode_instr(0, w, e).unwrap(), st);

        let mut bra = Instr::new(Opcode::Bra);
        bra.target = Some(target);
        bra.guard = guard.map(PredGuard::if_true);
        let (w, e) = encode_instr(0, &bra).unwrap();
        prop_assert_eq!(decode_instr(0, w, e).unwrap(), bra);
    }

    /// Instruction `Display` text parses back to the same instruction
    /// via the assembler (for non-branch instructions, whose targets
    /// print as absolute slots anyway).
    #[test]
    fn display_text_reparses(
        dst in arb_reg(),
        a in arb_reg(),
        imm in any::<i32>(),
        negated in any::<bool>(),
        pred in arb_pred(),
    ) {
        let mut i = Instr::new(Opcode::Imad);
        i.dst = Some(dst);
        i.srcs = vec![Operand::Reg(a), Operand::Imm(imm), Operand::Reg(a)];
        i.guard = Some(PredGuard { pred, negated });
        let text = format!("{i}\nEXIT");
        let k = rfv_isa::parse_kernel("p", &text, rfv_isa::LaunchConfig::new(1, 32, 1)).unwrap();
        prop_assert_eq!(k.items()[0].as_instr().unwrap(), &i);
    }
}

#[test]
fn decode_rejects_garbage_words() {
    // all-ones payload with a valid opcode: register fields are 63
    // ("none") where a register is required
    let garbage = u64::MAX;
    assert!(meta::decode(garbage).is_err() || meta::decode(garbage).is_ok());
    // a word with opcode 0 is not a valid instruction
    assert!(decode_instr(0, 0, None).is_err());
}
