//! Binary kernel images: a compact serialized form of a [`Kernel`]
//! ("cubin-lite").
//!
//! Every program slot is encoded as one or two 64-bit words sharing
//! the metadata instructions' layout (10-bit opcode split 4 + 6 in
//! bits `[3:0]` and `[63:58]`, 54 payload bits — see [`crate::meta`]):
//!
//! * `pir` / `pbr` slots use their existing encodings verbatim;
//! * machine instructions pack registers, predicates, and flags into
//!   the payload, with an optional *extension word* carrying a 32-bit
//!   immediate plus a 32-bit address offset / branch target (the
//!   moral equivalent of Fermi's wide-immediate forms).
//!
//! The image begins with a small header (magic, version, launch
//! geometry, name) and round-trips losslessly:
//! `decode_kernel(&encode_kernel(&k)?)? == k`.

use std::fmt;

use crate::instr::{Instr, Operand, PredGuard};
use crate::kernel::{Kernel, LaunchConfig, ProgItem};
use crate::meta::{self, MetaInstr};
use crate::op::{Cond, Opcode, Special};
use crate::reg::{ArchReg, Pred};

/// Image magic bytes.
pub const MAGIC: [u8; 4] = *b"RFVK";

/// Image format version.
pub const VERSION: u16 = 1;

/// 6-bit register-field sentinel for "no register".
const NO_REG: u64 = 0x3f;

/// `imm_slot` sentinel for "no immediate operand".
const NO_IMM: u64 = 3;

/// Encoding/decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BinaryError {
    /// More than one immediate operand (the single-extension-word
    /// format carries at most one 32-bit immediate).
    MultipleImmediates {
        /// Program slot of the offending instruction.
        pc: usize,
    },
    /// The image is shorter than its header or counts claim.
    Truncated,
    /// Bad magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// An opcode number that names no instruction.
    UnknownOpcode {
        /// Program slot.
        pc: usize,
        /// The 10-bit opcode value.
        code: u16,
    },
    /// A register/predicate field held an invalid id.
    BadField {
        /// Program slot.
        pc: usize,
        /// Field description.
        field: &'static str,
    },
    /// The decoded program failed kernel validation.
    InvalidKernel(String),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::MultipleImmediates { pc } => {
                write!(
                    f,
                    "instruction at slot {pc} has more than one immediate operand"
                )
            }
            BinaryError::Truncated => write!(f, "image truncated"),
            BinaryError::BadMagic => write!(f, "bad magic (not an RFVK image)"),
            BinaryError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            BinaryError::UnknownOpcode { pc, code } => {
                write!(f, "unknown opcode {code:#05x} at slot {pc}")
            }
            BinaryError::BadField { pc, field } => {
                write!(f, "invalid {field} field at slot {pc}")
            }
            BinaryError::InvalidKernel(e) => write!(f, "decoded kernel invalid: {e}"),
        }
    }
}

impl std::error::Error for BinaryError {}

// --- opcode numbering -----------------------------------------------------
// Families with a variant payload (compare condition, special register)
// store the variant in payload bits; everything else is a flat code.

fn opcode_code(op: Opcode) -> u16 {
    use Opcode::*;
    match op {
        Iadd => 0x010,
        Isub => 0x011,
        Imul => 0x012,
        Imad => 0x013,
        And => 0x014,
        Or => 0x015,
        Xor => 0x016,
        Shl => 0x017,
        Shr => 0x018,
        Mov => 0x019,
        Imin => 0x01a,
        Imax => 0x01b,
        Sel => 0x01c,
        Fadd => 0x020,
        Fmul => 0x021,
        Ffma => 0x022,
        Fmin => 0x023,
        Fmax => 0x024,
        Frcp => 0x028,
        Fsqrt => 0x029,
        Fexp => 0x02a,
        Flog => 0x02b,
        Isetp(_) => 0x030,
        Fsetp(_) => 0x031,
        Ldg => 0x038,
        Stg => 0x039,
        Lds => 0x03a,
        Sts => 0x03b,
        Ldl => 0x03c,
        Stl => 0x03d,
        Bra => 0x040,
        Bar => 0x041,
        Exit => 0x042,
        S2r(_) => 0x043,
        Nop => 0x044,
    }
}

fn code_opcode(code: u16, variant: u64) -> Option<Opcode> {
    use Opcode::*;
    let cond = |v: u64| match v {
        0 => Some(Cond::Lt),
        1 => Some(Cond::Le),
        2 => Some(Cond::Gt),
        3 => Some(Cond::Ge),
        4 => Some(Cond::Eq),
        5 => Some(Cond::Ne),
        _ => None,
    };
    let special = |v: u64| match v {
        0 => Some(Special::TidX),
        1 => Some(Special::CtaIdX),
        2 => Some(Special::NTidX),
        3 => Some(Special::NCtaIdX),
        4 => Some(Special::LaneId),
        5 => Some(Special::WarpId),
        _ => None,
    };
    Some(match code {
        0x010 => Iadd,
        0x011 => Isub,
        0x012 => Imul,
        0x013 => Imad,
        0x014 => And,
        0x015 => Or,
        0x016 => Xor,
        0x017 => Shl,
        0x018 => Shr,
        0x019 => Mov,
        0x01a => Imin,
        0x01b => Imax,
        0x01c => Sel,
        0x020 => Fadd,
        0x021 => Fmul,
        0x022 => Ffma,
        0x023 => Fmin,
        0x024 => Fmax,
        0x028 => Frcp,
        0x029 => Fsqrt,
        0x02a => Fexp,
        0x02b => Flog,
        0x030 => Isetp(cond(variant)?),
        0x031 => Fsetp(cond(variant)?),
        0x038 => Ldg,
        0x039 => Stg,
        0x03a => Lds,
        0x03b => Sts,
        0x03c => Ldl,
        0x03d => Stl,
        0x040 => Bra,
        0x041 => Bar,
        0x042 => Exit,
        0x043 => S2r(special(variant)?),
        0x044 => Nop,
        _ => return None,
    })
}

fn variant_bits(op: Opcode) -> u64 {
    match op {
        Opcode::Isetp(c) | Opcode::Fsetp(c) => match c {
            Cond::Lt => 0,
            Cond::Le => 1,
            Cond::Gt => 2,
            Cond::Ge => 3,
            Cond::Eq => 4,
            Cond::Ne => 5,
        },
        Opcode::S2r(s) => match s {
            Special::TidX => 0,
            Special::CtaIdX => 1,
            Special::NTidX => 2,
            Special::NCtaIdX => 3,
            Special::LaneId => 4,
            Special::WarpId => 5,
        },
        _ => 0,
    }
}

// --- payload field offsets (within the 54-bit payload) --------------------
const F_DST: u32 = 0; // 6 bits
const F_SRC0: u32 = 6; // 6 bits
const F_SRC1: u32 = 12; // 6 bits
const F_SRC2: u32 = 18; // 6 bits
const F_NSRC: u32 = 24; // 2 bits: number of source operands
const F_IMM_SLOT: u32 = 26; // 2 bits (3 = none)
const F_HAS_EXT: u32 = 28; // 1 bit
const F_HAS_GUARD: u32 = 29; // 1 bit
const F_GUARD_NEG: u32 = 30; // 1 bit
const F_GUARD_PRED: u32 = 31; // 2 bits
const F_HAS_PDST: u32 = 33; // 1 bit
const F_PDST: u32 = 34; // 2 bits
const F_HAS_PSRC: u32 = 36; // 1 bit
const F_PSRC: u32 = 37; // 2 bits
const F_VARIANT: u32 = 39; // 3 bits

fn encode_word(opcode: u16, payload: u64) -> u64 {
    debug_assert!(payload < 1 << 54);
    let low4 = u64::from(opcode) & 0xf;
    let high6 = u64::from(opcode) >> 4;
    low4 | (payload << 4) | (high6 << 58)
}

fn split_word(word: u64) -> (u16, u64) {
    let opcode = ((word & 0xf) | ((word >> 58) << 4)) as u16;
    (opcode, (word >> 4) & ((1 << 54) - 1))
}

/// Encodes one machine instruction into one or two words.
///
/// # Errors
///
/// Fails when the instruction carries more than one immediate operand.
pub fn encode_instr(pc: usize, i: &Instr) -> Result<(u64, Option<u64>), BinaryError> {
    let mut payload = 0u64;
    let set = |payload: &mut u64, off: u32, width: u32, v: u64| {
        debug_assert!(v < 1 << width);
        *payload |= v << off;
    };

    set(
        &mut payload,
        F_DST,
        6,
        i.dst.map_or(NO_REG, |r| u64::from(r.raw())),
    );
    let src_fields = [F_SRC0, F_SRC1, F_SRC2];
    let mut imm: Option<i32> = None;
    let mut imm_slot = NO_IMM;
    for (slot, op) in i.srcs.iter().enumerate() {
        match op {
            Operand::Reg(r) => set(&mut payload, src_fields[slot], 6, u64::from(r.raw())),
            Operand::Imm(v) => {
                if imm.is_some() {
                    return Err(BinaryError::MultipleImmediates { pc });
                }
                imm = Some(*v);
                imm_slot = slot as u64;
                set(&mut payload, src_fields[slot], 6, NO_REG);
            }
        }
    }
    for &field in src_fields.iter().skip(i.srcs.len()) {
        set(&mut payload, field, 6, NO_REG);
    }
    set(&mut payload, F_NSRC, 2, i.srcs.len() as u64);
    set(&mut payload, F_IMM_SLOT, 2, imm_slot);
    let needs_ext = imm.is_some() || i.mem_offset != 0 || i.target.is_some();
    set(&mut payload, F_HAS_EXT, 1, u64::from(needs_ext));
    if let Some(g) = i.guard {
        set(&mut payload, F_HAS_GUARD, 1, 1);
        set(&mut payload, F_GUARD_NEG, 1, u64::from(g.negated));
        set(&mut payload, F_GUARD_PRED, 2, g.pred.index() as u64);
    }
    if let Some(p) = i.pdst {
        set(&mut payload, F_HAS_PDST, 1, 1);
        set(&mut payload, F_PDST, 2, p.index() as u64);
    }
    if let Some(p) = i.psrc {
        set(&mut payload, F_HAS_PSRC, 1, 1);
        set(&mut payload, F_PSRC, 2, p.index() as u64);
    }
    set(&mut payload, F_VARIANT, 3, variant_bits(i.opcode));

    let word = encode_word(opcode_code(i.opcode), payload);
    let ext = needs_ext.then(|| {
        // low 32: immediate; high 32: mem_offset or branch target
        let hi = if let Some(t) = i.target {
            t as u32
        } else {
            i.mem_offset as u32
        };
        (u64::from(imm.unwrap_or(0) as u32)) | (u64::from(hi) << 32)
    });
    Ok((word, ext))
}

/// Decodes one machine instruction from its word(s).
///
/// # Errors
///
/// Fails on unknown opcodes or malformed fields.
pub fn decode_instr(pc: usize, word: u64, ext: Option<u64>) -> Result<Instr, BinaryError> {
    let (code, payload) = split_word(word);
    let get = |off: u32, width: u32| (payload >> off) & ((1u64 << width) - 1);
    let variant = get(F_VARIANT, 3);
    let opcode = code_opcode(code, variant).ok_or(BinaryError::UnknownOpcode { pc, code })?;
    let mut i = Instr::new(opcode);

    let dst = get(F_DST, 6);
    if dst != NO_REG {
        i.dst =
            Some(ArchReg::try_new(dst as u8).ok_or(BinaryError::BadField { pc, field: "dst" })?);
    }
    let nsrc = get(F_NSRC, 2) as usize;
    let imm_slot = get(F_IMM_SLOT, 2);
    let (imm32, hi32) = match ext {
        Some(e) => ((e & 0xffff_ffff) as u32, (e >> 32) as u32),
        None => (0, 0),
    };
    for (slot, &field) in [F_SRC0, F_SRC1, F_SRC2].iter().enumerate().take(nsrc) {
        let raw = get(field, 6);
        if imm_slot == slot as u64 {
            i.srcs.push(Operand::Imm(imm32 as i32));
        } else if raw == NO_REG {
            return Err(BinaryError::BadField { pc, field: "src" });
        } else {
            i.srcs.push(Operand::Reg(
                ArchReg::try_new(raw as u8).ok_or(BinaryError::BadField { pc, field: "src" })?,
            ));
        }
    }
    if get(F_HAS_GUARD, 1) == 1 {
        i.guard = Some(PredGuard {
            pred: Pred::new(get(F_GUARD_PRED, 2) as u8),
            negated: get(F_GUARD_NEG, 1) == 1,
        });
    }
    if get(F_HAS_PDST, 1) == 1 {
        i.pdst = Some(Pred::new(get(F_PDST, 2) as u8));
    }
    if get(F_HAS_PSRC, 1) == 1 {
        i.psrc = Some(Pred::new(get(F_PSRC, 2) as u8));
    }
    if get(F_HAS_EXT, 1) == 1 {
        if opcode == Opcode::Bra {
            i.target = Some(hi32 as usize);
        } else {
            i.mem_offset = hi32 as i32;
        }
    } else if opcode == Opcode::Bra {
        i.target = Some(0);
    }
    Ok(i)
}

/// Serializes a kernel into a binary image.
///
/// # Errors
///
/// Fails when an instruction cannot be encoded (more than one
/// immediate operand).
pub fn encode_kernel(kernel: &Kernel) -> Result<Vec<u8>, BinaryError> {
    let mut out = Vec::with_capacity(32 + kernel.len() * 10);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let launch = kernel.launch();
    out.extend_from_slice(&launch.grid_ctas().to_le_bytes());
    out.extend_from_slice(&launch.threads_per_cta().to_le_bytes());
    out.extend_from_slice(&launch.max_conc_ctas_per_sm().to_le_bytes());
    let name = kernel.name().as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(kernel.len() as u32).to_le_bytes());
    for (pc, item) in kernel.items().iter().enumerate() {
        let (word, ext) = match item {
            ProgItem::Pir(p) => (p.encode(), None),
            ProgItem::Pbr(p) => (p.encode(), None),
            ProgItem::Instr(i) => encode_instr(pc, i)?,
        };
        out.push(u8::from(ext.is_some()));
        out.extend_from_slice(&word.to_le_bytes());
        if let Some(e) = ext {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
    Ok(out)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinaryError> {
        if self.pos + n > self.bytes.len() {
            return Err(BinaryError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BinaryError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, BinaryError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, BinaryError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, BinaryError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Deserializes a binary image back into a kernel.
///
/// # Errors
///
/// Fails on malformed images or programs that do not validate.
pub fn decode_kernel(bytes: &[u8]) -> Result<Kernel, BinaryError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(BinaryError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(BinaryError::BadVersion(version));
    }
    let grid = r.u32()?;
    let threads = r.u32()?;
    let conc = r.u32()?;
    let name_len = r.u32()? as usize;
    let name = String::from_utf8_lossy(r.take(name_len)?).into_owned();
    let count = r.u32()? as usize;
    let mut items = Vec::with_capacity(count);
    for pc in 0..count {
        let has_ext = r.u8()? != 0;
        let word = r.u64()?;
        let ext = if has_ext { Some(r.u64()?) } else { None };
        let (code, _) = split_word(word);
        let item = if code == meta::PIR_OPCODE || code == meta::PBR_OPCODE {
            match meta::decode(word).map_err(|_| BinaryError::UnknownOpcode { pc, code })? {
                MetaInstr::Pir(p) => ProgItem::Pir(p),
                MetaInstr::Pbr(p) => ProgItem::Pbr(p),
            }
        } else {
            ProgItem::Instr(decode_instr(pc, word, ext)?)
        };
        items.push(item);
    }
    let launch = LaunchConfig::new(grid, threads, conc);
    Kernel::new(name, items, launch).map_err(BinaryError::InvalidKernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    fn sample() -> Kernel {
        let mut b = KernelBuilder::new("roundtrip");
        b.s2r(ArchReg::R0, Special::TidX);
        b.imad(
            ArchReg::R1,
            ArchReg::R0,
            Operand::Imm(4),
            Operand::Reg(ArchReg::R0),
        );
        b.ldg(ArchReg::R2, ArchReg::R1, 0x100);
        b.isetp(Cond::Ne, Pred::P2, ArchReg::R2, Operand::Imm(0));
        b.guard(PredGuard::if_false(Pred::P2));
        b.bra("end");
        b.sel(
            ArchReg::R3,
            Operand::Reg(ArchReg::R2),
            Operand::Imm(7),
            Pred::P2,
        );
        b.stg(ArchReg::R1, ArchReg::R3, 0x2000);
        b.label("end");
        b.exit();
        b.build(LaunchConfig::new(3, 96, 2)).unwrap()
    }

    #[test]
    fn kernel_roundtrip_is_lossless() {
        let k = sample();
        let image = encode_kernel(&k).unwrap();
        let back = decode_kernel(&image).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.name(), "roundtrip");
        assert_eq!(back.launch(), k.launch());
    }

    #[test]
    fn compiled_kernel_with_metadata_roundtrips() {
        // encode a kernel that embeds pir/pbr metadata words
        use crate::meta::{Pbr, Pir, ReleaseFlags};
        let mut pir = Pir::new();
        pir.set_flags(0, ReleaseFlags::from_bits(0b001));
        let pbr = Pbr::from_regs(vec![ArchReg::R3, ArchReg::R7]).unwrap();
        let mut items = vec![ProgItem::Pir(pir), ProgItem::Pbr(pbr)];
        for item in sample().items() {
            items.push(item.clone());
        }
        let k = Kernel::new("meta", items, LaunchConfig::new(1, 32, 1)).unwrap();
        // fix: branch targets shifted by 2 would be wrong, but Kernel
        // validation only requires in-range, which holds
        let image = encode_kernel(&k).unwrap();
        let back = decode_kernel(&image).unwrap();
        assert_eq!(back.num_meta_instrs(), 2);
        assert_eq!(back, k);
    }

    #[test]
    fn double_immediate_is_rejected() {
        let mut b = KernelBuilder::new("bad");
        b.imad(ArchReg::R0, ArchReg::R1, Operand::Imm(2), Operand::Imm(3));
        b.exit();
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        assert_eq!(
            encode_kernel(&k),
            Err(BinaryError::MultipleImmediates { pc: 0 })
        );
    }

    #[test]
    fn truncated_and_corrupt_images_rejected() {
        let k = sample();
        let image = encode_kernel(&k).unwrap();
        assert_eq!(decode_kernel(&image[..10]), Err(BinaryError::Truncated));
        let mut bad_magic = image.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_kernel(&bad_magic), Err(BinaryError::BadMagic));
        let mut bad_version = image.clone();
        bad_version[4] = 0xff;
        assert!(matches!(
            decode_kernel(&bad_version),
            Err(BinaryError::BadVersion(_))
        ));
    }

    #[test]
    fn negative_immediates_and_offsets_survive() {
        let mut b = KernelBuilder::new("neg");
        b.mov(ArchReg::R0, -123);
        b.iadd(ArchReg::R1, ArchReg::R0, -1);
        b.ldg(ArchReg::R2, ArchReg::R1, -64);
        b.stg(ArchReg::R1, ArchReg::R2, 0);
        b.exit();
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let back = decode_kernel(&encode_kernel(&k).unwrap()).unwrap();
        assert_eq!(back, k);
        let instrs: Vec<_> = back.items().iter().filter_map(|i| i.as_instr()).collect();
        assert_eq!(instrs[0].srcs[0], Operand::Imm(-123));
        assert_eq!(instrs[2].mem_offset, -64);
    }

    #[test]
    fn all_opcodes_roundtrip_through_codes() {
        use Opcode::*;
        let ops = [
            Iadd,
            Isub,
            Imul,
            Imad,
            And,
            Or,
            Xor,
            Shl,
            Shr,
            Mov,
            Imin,
            Imax,
            Sel,
            Fadd,
            Fmul,
            Ffma,
            Fmin,
            Fmax,
            Frcp,
            Fsqrt,
            Fexp,
            Flog,
            Isetp(Cond::Lt),
            Isetp(Cond::Ne),
            Fsetp(Cond::Ge),
            Ldg,
            Stg,
            Lds,
            Sts,
            Ldl,
            Stl,
            Bra,
            Bar,
            Exit,
            S2r(Special::TidX),
            S2r(Special::WarpId),
            Nop,
        ];
        for op in ops {
            let decoded = code_opcode(opcode_code(op), variant_bits(op)).unwrap();
            assert_eq!(decoded, op, "{op:?}");
        }
    }

    #[test]
    fn opcode_space_avoids_metadata_codes() {
        use Opcode::*;
        for op in [Iadd, Bra, Nop, S2r(Special::TidX), Fsetp(Cond::Eq)] {
            assert_ne!(opcode_code(op), meta::PIR_OPCODE);
            assert_ne!(opcode_code(op), meta::PBR_OPCODE);
        }
    }
}
