//! Opcodes, execution classes, comparison conditions, and special
//! (read-only) hardware registers.

use std::fmt;

/// The operation an instruction performs.
///
/// The set is the PTXPlus-level subset needed to express the paper's 16
/// benchmarks: integer/float arithmetic, predicate-setting compares,
/// global/shared/local memory accesses, and control flow. Each opcode
/// belongs to an [`ExecClass`] that the simulator maps to a functional
/// unit and latency.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    // --- integer ALU ---
    /// `dst = a + b`
    Iadd,
    /// `dst = a - b`
    Isub,
    /// `dst = a * b` (low 32 bits)
    Imul,
    /// `dst = a * b + c`
    Imad,
    /// `dst = a & b`
    And,
    /// `dst = a | b`
    Or,
    /// `dst = a ^ b`
    Xor,
    /// `dst = a << b`
    Shl,
    /// `dst = a >> b` (logical)
    Shr,
    /// `dst = a` (register/immediate move)
    Mov,
    /// `dst = min(a, b)` (signed)
    Imin,
    /// `dst = max(a, b)` (signed)
    Imax,
    /// `dst = pred ? a : b`
    Sel,
    // --- float ALU (values are f32 bit patterns) ---
    /// `dst = a + b` (f32)
    Fadd,
    /// `dst = a * b` (f32)
    Fmul,
    /// `dst = a * b + c` (f32 fused multiply-add)
    Ffma,
    /// `dst = min(a, b)` (f32)
    Fmin,
    /// `dst = max(a, b)` (f32)
    Fmax,
    // --- SFU (special function unit) ---
    /// `dst = 1 / a` (f32 reciprocal)
    Frcp,
    /// `dst = sqrt(a)` (f32)
    Fsqrt,
    /// `dst = exp2(a)` (f32)
    Fexp,
    /// `dst = log2(a)` (f32)
    Flog,
    // --- predicate-setting compares ---
    /// `pdst = a <cond> b` (signed integers)
    Isetp(Cond),
    /// `pdst = a <cond> b` (f32)
    Fsetp(Cond),
    // --- memory ---
    /// `dst = global[a + imm]`
    Ldg,
    /// `global[a + imm] = b`
    Stg,
    /// `dst = shared[a + imm]`
    Lds,
    /// `shared[a + imm] = b`
    Sts,
    /// `dst = local[a + imm]` (per-thread local; used by spill code)
    Ldl,
    /// `local[a + imm] = b` (per-thread local; used by spill code)
    Stl,
    // --- control ---
    /// Branch to a PC when the guard predicate holds in any lane.
    Bra,
    /// CTA-wide barrier.
    Bar,
    /// Thread exit.
    Exit,
    /// Read a special register (`dst = special`).
    S2r(Special),
    /// No operation.
    Nop,
}

impl Opcode {
    /// The execution class (functional unit + latency group) of this
    /// opcode.
    pub fn exec_class(self) -> ExecClass {
        use Opcode::*;
        match self {
            Iadd | Isub | Imul | Imad | And | Or | Xor | Shl | Shr | Mov | Imin | Imax | Sel
            | Fadd | Fmul | Ffma | Fmin | Fmax | Isetp(_) | Fsetp(_) | S2r(_) | Nop => {
                ExecClass::Alu
            }
            Frcp | Fsqrt | Fexp | Flog => ExecClass::Sfu,
            Ldg | Stg => ExecClass::GlobalMem,
            Lds | Sts => ExecClass::SharedMem,
            Ldl | Stl => ExecClass::LocalMem,
            Bra | Bar | Exit => ExecClass::Control,
        }
    }

    /// Whether this opcode writes a destination register.
    pub fn writes_reg(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            Stg | Sts | Stl | Bra | Bar | Exit | Nop | Isetp(_) | Fsetp(_)
        )
    }

    /// Whether this opcode writes a destination predicate.
    pub fn writes_pred(self) -> bool {
        matches!(self, Opcode::Isetp(_) | Opcode::Fsetp(_))
    }

    /// Whether this opcode is a memory operation (any space).
    pub fn is_mem(self) -> bool {
        matches!(
            self.exec_class(),
            ExecClass::GlobalMem | ExecClass::SharedMem | ExecClass::LocalMem
        )
    }

    /// Whether this is a load (reads memory into a register).
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ldg | Opcode::Lds | Opcode::Ldl)
    }

    /// Whether this is a store (writes a register to memory).
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stg | Opcode::Sts | Opcode::Stl)
    }

    /// The mnemonic used by the disassembler.
    pub fn mnemonic(self) -> String {
        use Opcode::*;
        match self {
            Iadd => "IADD".into(),
            Isub => "ISUB".into(),
            Imul => "IMUL".into(),
            Imad => "IMAD".into(),
            And => "AND".into(),
            Or => "OR".into(),
            Xor => "XOR".into(),
            Shl => "SHL".into(),
            Shr => "SHR".into(),
            Mov => "MOV".into(),
            Imin => "IMIN".into(),
            Imax => "IMAX".into(),
            Sel => "SEL".into(),
            Fadd => "FADD".into(),
            Fmul => "FMUL".into(),
            Ffma => "FFMA".into(),
            Fmin => "FMIN".into(),
            Fmax => "FMAX".into(),
            Frcp => "FRCP".into(),
            Fsqrt => "FSQRT".into(),
            Fexp => "FEXP".into(),
            Flog => "FLOG".into(),
            Isetp(c) => format!("ISETP.{c}"),
            Fsetp(c) => format!("FSETP.{c}"),
            Ldg => "LDG".into(),
            Stg => "STG".into(),
            Lds => "LDS".into(),
            Sts => "STS".into(),
            Ldl => "LDL".into(),
            Stl => "STL".into(),
            Bra => "BRA".into(),
            Bar => "BAR.SYNC".into(),
            Exit => "EXIT".into(),
            S2r(s) => format!("S2R.{s}"),
            Nop => "NOP".into(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// Functional-unit / latency class of an opcode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExecClass {
    /// Integer / single-precision float pipeline.
    Alu,
    /// Special function unit (transcendentals, reciprocal, sqrt).
    Sfu,
    /// Global (off-chip) memory.
    GlobalMem,
    /// Shared (on-chip scratchpad) memory.
    SharedMem,
    /// Per-thread local memory (spill space); off-chip but always
    /// coalesced because consecutive lanes map to consecutive words.
    LocalMem,
    /// Control flow (branch, barrier, exit).
    Control,
}

impl ExecClass {
    /// Whether operations of this class have variable (long) latency
    /// that sends the issuing warp to the pending queue of the
    /// two-level scheduler.
    pub fn is_long_latency(self) -> bool {
        matches!(self, ExecClass::GlobalMem | ExecClass::LocalMem)
    }
}

/// Comparison condition for `ISETP` / `FSETP`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl Cond {
    /// Evaluates the condition on signed integers.
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
            Cond::Eq => a == b,
            Cond::Ne => a != b,
        }
    }

    /// Evaluates the condition on f32 values.
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
            Cond::Eq => a == b,
            Cond::Ne => a != b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Lt => "LT",
            Cond::Le => "LE",
            Cond::Gt => "GT",
            Cond::Ge => "GE",
            Cond::Eq => "EQ",
            Cond::Ne => "NE",
        };
        f.write_str(s)
    }
}

/// Special read-only hardware registers accessible via `S2R`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Special {
    /// Thread index within the CTA (x dimension).
    TidX,
    /// CTA index within the grid (x dimension).
    CtaIdX,
    /// Number of threads per CTA.
    NTidX,
    /// Number of CTAs in the grid.
    NCtaIdX,
    /// Lane id within the warp.
    LaneId,
    /// Warp id within the CTA.
    WarpId,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Special::TidX => "TID.X",
            Special::CtaIdX => "CTAID.X",
            Special::NTidX => "NTID.X",
            Special::NCtaIdX => "NCTAID.X",
            Special::LaneId => "LANEID",
            Special::WarpId => "WARPID",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_classes() {
        assert_eq!(Opcode::Iadd.exec_class(), ExecClass::Alu);
        assert_eq!(Opcode::Frcp.exec_class(), ExecClass::Sfu);
        assert_eq!(Opcode::Ldg.exec_class(), ExecClass::GlobalMem);
        assert_eq!(Opcode::Sts.exec_class(), ExecClass::SharedMem);
        assert_eq!(Opcode::Stl.exec_class(), ExecClass::LocalMem);
        assert_eq!(Opcode::Exit.exec_class(), ExecClass::Control);
    }

    #[test]
    fn long_latency_classes() {
        assert!(ExecClass::GlobalMem.is_long_latency());
        assert!(ExecClass::LocalMem.is_long_latency());
        assert!(!ExecClass::SharedMem.is_long_latency());
        assert!(!ExecClass::Alu.is_long_latency());
    }

    #[test]
    fn reg_write_classification() {
        assert!(Opcode::Iadd.writes_reg());
        assert!(Opcode::Ldg.writes_reg());
        assert!(!Opcode::Stg.writes_reg());
        assert!(!Opcode::Isetp(Cond::Lt).writes_reg());
        assert!(Opcode::Isetp(Cond::Lt).writes_pred());
        assert!(!Opcode::Bra.writes_reg());
    }

    #[test]
    fn load_store_classification() {
        assert!(Opcode::Ldg.is_load() && Opcode::Ldg.is_mem());
        assert!(Opcode::Stl.is_store() && Opcode::Stl.is_mem());
        assert!(!Opcode::Iadd.is_mem());
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Lt.eval_i32(-1, 0));
        assert!(Cond::Ge.eval_i32(0, 0));
        assert!(Cond::Ne.eval_f32(1.0, 2.0));
        assert!(!Cond::Eq.eval_f32(1.0, 2.0));
        assert!(Cond::Gt.eval_f32(2.5, 1.0));
        assert!(Cond::Le.eval_i32(3, 3));
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Opcode::Isetp(Cond::Ne).to_string(), "ISETP.NE");
        assert_eq!(Opcode::S2r(Special::TidX).to_string(), "S2R.TID.X");
        assert_eq!(Opcode::Ffma.to_string(), "FFMA");
    }
}
