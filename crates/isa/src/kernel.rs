//! Kernels: a program (instruction + metadata stream) plus CUDA-style
//! launch geometry.

use std::collections::BTreeSet;
use std::fmt;

use crate::instr::Instr;
use crate::meta::{Pbr, Pir};
use crate::reg::ArchReg;
use crate::{MAX_REGS_PER_THREAD, WARP_SIZE};

/// One 64-bit program slot: a machine instruction or an embedded
/// metadata instruction.
///
/// Metadata instructions occupy real PC slots (the paper's compiler
/// embeds them in the code stream, and the fetch stage must either
/// fetch them or skip them on a release-flag-cache hit), so branch
/// targets count them.
#[derive(Clone, PartialEq, Debug)]
pub enum ProgItem {
    /// A machine instruction.
    Instr(Instr),
    /// A per-instruction release flag-set.
    Pir(Pir),
    /// A per-branch release flag-set.
    Pbr(Pbr),
}

impl ProgItem {
    /// The machine instruction, when this slot holds one.
    pub fn as_instr(&self) -> Option<&Instr> {
        match self {
            ProgItem::Instr(i) => Some(i),
            _ => None,
        }
    }

    /// Whether this slot holds a metadata instruction.
    pub fn is_meta(&self) -> bool {
        matches!(self, ProgItem::Pir(_) | ProgItem::Pbr(_))
    }
}

impl fmt::Display for ProgItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgItem::Instr(i) => write!(f, "{i}"),
            ProgItem::Pir(p) => write!(f, "{p}"),
            ProgItem::Pbr(p) => write!(f, "{p}"),
        }
    }
}

/// CUDA-style launch geometry for a kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LaunchConfig {
    grid_ctas: u32,
    threads_per_cta: u32,
    max_conc_ctas_per_sm: u32,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or `threads_per_cta`
    /// exceeds 1024.
    pub fn new(grid_ctas: u32, threads_per_cta: u32, max_conc_ctas_per_sm: u32) -> LaunchConfig {
        assert!(grid_ctas > 0, "grid must contain at least one CTA");
        assert!(
            (1..=1024).contains(&threads_per_cta),
            "threads per CTA must be in 1..=1024, got {threads_per_cta}"
        );
        assert!(
            max_conc_ctas_per_sm > 0,
            "at least one CTA must fit on an SM"
        );
        LaunchConfig {
            grid_ctas,
            threads_per_cta,
            max_conc_ctas_per_sm,
        }
    }

    /// Number of CTAs in the grid.
    pub fn grid_ctas(&self) -> u32 {
        self.grid_ctas
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.threads_per_cta
    }

    /// Occupancy limit: concurrent CTAs per SM (Table 1's
    /// "Conc. CTAs/Core").
    pub fn max_conc_ctas_per_sm(&self) -> u32 {
        self.max_conc_ctas_per_sm
    }

    /// Warps per CTA (threads rounded up to warp granularity).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta.div_ceil(WARP_SIZE as u32)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid_ctas) * u64::from(self.threads_per_cta)
    }
}

/// A complete kernel: name, program, and launch geometry.
///
/// A fresh kernel from [`crate::builder::KernelBuilder`] contains only
/// machine instructions; the compiler (`rfv-compiler`) rewrites it with
/// embedded `pir`/`pbr` metadata.
#[derive(Clone, PartialEq, Debug)]
pub struct Kernel {
    name: String,
    items: Vec<ProgItem>,
    launch: LaunchConfig,
}

impl Kernel {
    /// Assembles a kernel from parts, validating every instruction and
    /// every branch target.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid instruction or
    /// out-of-range branch target.
    pub fn new(
        name: impl Into<String>,
        items: Vec<ProgItem>,
        launch: LaunchConfig,
    ) -> Result<Kernel, String> {
        let name = name.into();
        if items.is_empty() {
            return Err(format!("kernel {name}: empty program"));
        }
        for (pc, item) in items.iter().enumerate() {
            if let ProgItem::Instr(i) = item {
                i.validate().map_err(|e| format!("{name}@{pc:#x}: {e}"))?;
                if let Some(t) = i.target {
                    if t >= items.len() {
                        return Err(format!("{name}@{pc:#x}: branch target {t:#x} out of range"));
                    }
                }
            }
        }
        Ok(Kernel {
            name,
            items,
            launch,
        })
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program stream.
    pub fn items(&self) -> &[ProgItem] {
        &self.items
    }

    /// The launch geometry.
    pub fn launch(&self) -> LaunchConfig {
        self.launch
    }

    /// Replaces the launch geometry (used by workload scaling).
    pub fn with_launch(mut self, launch: LaunchConfig) -> Kernel {
        self.launch = launch;
        self
    }

    /// Program length in slots (machine + metadata instructions).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the program is empty (never true for a valid kernel).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of machine (non-metadata) instructions.
    pub fn num_machine_instrs(&self) -> usize {
        self.items.iter().filter(|i| !i.is_meta()).count()
    }

    /// Number of embedded metadata instructions.
    pub fn num_meta_instrs(&self) -> usize {
        self.items.iter().filter(|i| i.is_meta()).count()
    }

    /// The set of architected registers the program touches.
    pub fn regs_used(&self) -> BTreeSet<ArchReg> {
        let mut set = BTreeSet::new();
        for item in &self.items {
            if let ProgItem::Instr(i) = item {
                set.extend(i.reads());
                set.extend(i.writes());
            }
        }
        set
    }

    /// Registers allocated per thread: `max register id + 1`.
    ///
    /// This mirrors how the CUDA toolchain reports "registers per
    /// kernel" (Table 1): allocation is by highest id, not by the count
    /// of distinct ids.
    pub fn num_regs(&self) -> usize {
        self.regs_used()
            .iter()
            .next_back()
            .map_or(0, |r| r.index() + 1)
            .min(MAX_REGS_PER_THREAD)
    }

    /// Total architected warp-registers demanded per SM at full
    /// occupancy: `num_regs × warps/CTA × conc. CTAs`.
    pub fn arch_regs_per_sm(&self) -> usize {
        self.num_regs()
            * self.launch.warps_per_cta() as usize
            * self.launch.max_conc_ctas_per_sm() as usize
    }

    /// Disassembles the program, one slot per line.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pc, item) in self.items.iter().enumerate() {
            let _ = writeln!(out, "/*{:04x}*/  {item}", pc * 8);
        }
        out
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {} ({} instrs, {} regs/thread, {}x{} threads)",
            self.name,
            self.items.len(),
            self.num_regs(),
            self.launch.grid_ctas(),
            self.launch.threads_per_cta()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Operand;
    use crate::op::Opcode;

    fn mov(dst: u8, v: i32) -> ProgItem {
        let mut i = Instr::new(Opcode::Mov);
        i.dst = Some(ArchReg::new(dst));
        i.srcs = vec![Operand::Imm(v)];
        ProgItem::Instr(i)
    }

    fn exit() -> ProgItem {
        ProgItem::Instr(Instr::new(Opcode::Exit))
    }

    #[test]
    fn launch_config_geometry() {
        let lc = LaunchConfig::new(64, 256, 6);
        assert_eq!(lc.warps_per_cta(), 8);
        assert_eq!(lc.total_threads(), 64 * 256);
        let odd = LaunchConfig::new(168, 169, 8); // the NN benchmark
        assert_eq!(odd.warps_per_cta(), 6);
    }

    #[test]
    #[should_panic(expected = "1..=1024")]
    fn launch_config_rejects_oversized_cta() {
        LaunchConfig::new(1, 1025, 1);
    }

    #[test]
    fn kernel_counts_regs_by_max_id() {
        let k = Kernel::new(
            "t",
            vec![mov(0, 1), mov(9, 2), exit()],
            LaunchConfig::new(1, 32, 1),
        )
        .unwrap();
        // ids 0 and 9 used; allocation is by max id + 1
        assert_eq!(k.regs_used().len(), 2);
        assert_eq!(k.num_regs(), 10);
    }

    #[test]
    fn kernel_rejects_bad_branch_target() {
        let mut b = Instr::new(Opcode::Bra);
        b.target = Some(99);
        let err = Kernel::new(
            "t",
            vec![ProgItem::Instr(b), exit()],
            LaunchConfig::new(1, 32, 1),
        )
        .unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn kernel_rejects_empty_program() {
        assert!(Kernel::new("t", vec![], LaunchConfig::new(1, 32, 1)).is_err());
    }

    #[test]
    fn arch_regs_per_sm() {
        let k = Kernel::new("t", vec![mov(13, 1), exit()], LaunchConfig::new(64, 256, 6)).unwrap();
        // 14 regs × 8 warps × 6 CTAs
        assert_eq!(k.arch_regs_per_sm(), 14 * 8 * 6);
    }

    #[test]
    fn meta_counting() {
        let k = Kernel::new(
            "t",
            vec![ProgItem::Pir(Pir::new()), mov(0, 1), exit()],
            LaunchConfig::new(1, 32, 1),
        )
        .unwrap();
        assert_eq!(k.num_meta_instrs(), 1);
        assert_eq!(k.num_machine_instrs(), 2);
        assert!(k.disassemble().contains(".pir"));
    }
}
