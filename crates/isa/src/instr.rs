//! Machine instructions: operands, predicate guards, and the
//! [`Instr`] type itself.

use std::fmt;

use crate::op::Opcode;
use crate::reg::{ArchReg, Pred};
use crate::MAX_SRC_OPERANDS;

/// A source operand: an architected register or a 32-bit immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Architected register source.
    Reg(ArchReg),
    /// Immediate constant (sign-extended where relevant).
    Imm(i32),
}

impl Operand {
    /// The register this operand names, if any.
    pub fn reg(self) -> Option<ArchReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<ArchReg> for Operand {
    fn from(r: ArchReg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

/// A predicate guard (`@p0` / `@!p0`) controlling whether an
/// instruction executes in each lane.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredGuard {
    /// The predicate register consulted.
    pub pred: Pred,
    /// When true the guard is the *negation* of the predicate.
    pub negated: bool,
}

impl PredGuard {
    /// Guard that executes lanes where `pred` is true.
    pub fn if_true(pred: Pred) -> PredGuard {
        PredGuard {
            pred,
            negated: false,
        }
    }

    /// Guard that executes lanes where `pred` is false.
    pub fn if_false(pred: Pred) -> PredGuard {
        PredGuard {
            pred,
            negated: true,
        }
    }

    /// Applies the guard to a raw predicate value.
    pub fn passes(self, pred_value: bool) -> bool {
        pred_value != self.negated
    }
}

impl fmt::Display for PredGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// A single machine instruction.
///
/// Instructions carry at most [`MAX_SRC_OPERANDS`] register/immediate
/// sources; memory operations additionally carry an immediate address
/// offset, and branches carry a target PC (an instruction index within
/// the kernel).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// Operation to perform.
    pub opcode: Opcode,
    /// Destination register, when [`Opcode::writes_reg`].
    pub dst: Option<ArchReg>,
    /// Destination predicate, when [`Opcode::writes_pred`].
    pub pdst: Option<Pred>,
    /// Source operands (0 to 3).
    pub srcs: Vec<Operand>,
    /// Predicate source consumed by `SEL`.
    pub psrc: Option<Pred>,
    /// Immediate byte offset for memory operations.
    pub mem_offset: i32,
    /// Branch target PC (instruction index), for `BRA`.
    pub target: Option<usize>,
    /// Optional execution guard.
    pub guard: Option<PredGuard>,
}

impl Instr {
    /// Creates a bare instruction with no operands; used by the
    /// builder, which then fills in the fields it needs.
    pub fn new(opcode: Opcode) -> Instr {
        Instr {
            opcode,
            dst: None,
            pdst: None,
            srcs: Vec::new(),
            psrc: None,
            mem_offset: 0,
            target: None,
            guard: None,
        }
    }

    /// Register source operands, in operand-slot order.
    ///
    /// The slot position matters: the paper's per-instruction release
    /// flag dedicates one bit per operand slot (§6.2), so the compiler
    /// and the decode stage must agree on slot numbering.
    pub fn src_regs(&self) -> impl Iterator<Item = (usize, ArchReg)> + '_ {
        self.srcs
            .iter()
            .enumerate()
            .filter_map(|(slot, op)| op.reg().map(|r| (slot, r)))
    }

    /// All architected registers this instruction reads (deduplicated
    /// only by slot; a register appearing in two slots appears twice).
    pub fn reads(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src_regs().map(|(_, r)| r)
    }

    /// The architected register this instruction writes, if any.
    pub fn writes(&self) -> Option<ArchReg> {
        self.dst
    }

    /// Whether the instruction can fall through to the next PC.
    ///
    /// `EXIT` never falls through; an *unconditional* branch never
    /// falls through; everything else does.
    pub fn falls_through(&self) -> bool {
        match self.opcode {
            Opcode::Exit => false,
            Opcode::Bra => self.guard.is_some(),
            _ => true,
        }
    }

    /// Validates structural invariants; the builder calls this on every
    /// emitted instruction.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.srcs.len() > MAX_SRC_OPERANDS {
            return Err(format!(
                "{}: {} source operands exceed the maximum of {MAX_SRC_OPERANDS}",
                self.opcode,
                self.srcs.len()
            ));
        }
        if self.opcode.writes_reg() && self.dst.is_none() {
            return Err(format!("{}: missing destination register", self.opcode));
        }
        if !self.opcode.writes_reg() && self.dst.is_some() {
            return Err(format!(
                "{}: destination register on a non-writing opcode",
                self.opcode
            ));
        }
        if self.opcode.writes_pred() && self.pdst.is_none() {
            return Err(format!("{}: missing destination predicate", self.opcode));
        }
        if self.opcode == Opcode::Bra && self.target.is_none() {
            return Err("BRA: missing branch target".into());
        }
        if self.opcode != Opcode::Bra && self.target.is_some() {
            return Err(format!("{}: branch target on a non-branch", self.opcode));
        }
        if self.opcode == Opcode::Sel && self.psrc.is_none() {
            return Err("SEL: missing predicate source".into());
        }
        Ok(())
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if let Some(d) = self.dst {
            sep(f)?;
            write!(f, "{d}")?;
        }
        if let Some(p) = self.pdst {
            sep(f)?;
            write!(f, "{p}")?;
        }
        if self.opcode.is_mem() {
            // loads: dst, [addr+off]; stores: [addr+off], data
            if self.opcode.is_load() {
                sep(f)?;
                write!(f, "[{}+{:#x}]", self.srcs[0], self.mem_offset)?;
            } else {
                sep(f)?;
                write!(f, "[{}+{:#x}]", self.srcs[0], self.mem_offset)?;
                sep(f)?;
                write!(f, "{}", self.srcs[1])?;
            }
        } else {
            for s in &self.srcs {
                sep(f)?;
                write!(f, "{s}")?;
            }
        }
        if let Some(p) = self.psrc {
            sep(f)?;
            write!(f, "{p}")?;
        }
        if let Some(t) = self.target {
            sep(f)?;
            write!(f, "-> {t:#x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Cond;

    fn iadd(dst: u8, a: u8, b: i32) -> Instr {
        let mut i = Instr::new(Opcode::Iadd);
        i.dst = Some(ArchReg::new(dst));
        i.srcs = vec![Operand::Reg(ArchReg::new(a)), Operand::Imm(b)];
        i
    }

    #[test]
    fn valid_iadd() {
        assert!(iadd(0, 1, 5).validate().is_ok());
    }

    #[test]
    fn missing_dst_rejected() {
        let mut i = iadd(0, 1, 5);
        i.dst = None;
        assert!(i.validate().unwrap_err().contains("missing destination"));
    }

    #[test]
    fn too_many_srcs_rejected() {
        let mut i = iadd(0, 1, 5);
        i.srcs = vec![Operand::Imm(0); 4];
        assert!(i.validate().unwrap_err().contains("exceed"));
    }

    #[test]
    fn branch_needs_target() {
        let mut b = Instr::new(Opcode::Bra);
        assert!(b.validate().is_err());
        b.target = Some(4);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn setp_needs_pdst() {
        let mut i = Instr::new(Opcode::Isetp(Cond::Lt));
        i.srcs = vec![Operand::Reg(ArchReg::R0), Operand::Imm(3)];
        assert!(i.validate().is_err());
        i.pdst = Some(Pred::P0);
        assert!(i.validate().is_ok());
    }

    #[test]
    fn fall_through_rules() {
        assert!(!Instr::new(Opcode::Exit).falls_through());
        let mut b = Instr::new(Opcode::Bra);
        b.target = Some(0);
        assert!(
            !b.falls_through(),
            "unconditional branch never falls through"
        );
        b.guard = Some(PredGuard::if_true(Pred::P0));
        assert!(b.falls_through(), "conditional branch may fall through");
        assert!(iadd(0, 1, 2).falls_through());
    }

    #[test]
    fn src_regs_preserves_slots() {
        let mut i = Instr::new(Opcode::Imad);
        i.dst = Some(ArchReg::R0);
        i.srcs = vec![
            Operand::Reg(ArchReg::R1),
            Operand::Imm(4),
            Operand::Reg(ArchReg::R2),
        ];
        let slots: Vec<(usize, ArchReg)> = i.src_regs().collect();
        assert_eq!(slots, vec![(0, ArchReg::R1), (2, ArchReg::R2)]);
    }

    #[test]
    fn guard_semantics() {
        let g = PredGuard::if_true(Pred::P1);
        assert!(g.passes(true) && !g.passes(false));
        let n = PredGuard::if_false(Pred::P1);
        assert!(!n.passes(true) && n.passes(false));
        assert_eq!(n.to_string(), "@!p1");
    }

    #[test]
    fn display_forms() {
        let i = iadd(4, 5, 16);
        assert_eq!(i.to_string(), "IADD r4, r5, 0x10");
        let mut ld = Instr::new(Opcode::Ldg);
        ld.dst = Some(ArchReg::R0);
        ld.srcs = vec![Operand::Reg(ArchReg::R2)];
        ld.mem_offset = 64;
        assert_eq!(ld.to_string(), "LDG r0, [r2+0x40]");
        let mut st = Instr::new(Opcode::Stg);
        st.srcs = vec![Operand::Reg(ArchReg::R2), Operand::Reg(ArchReg::R3)];
        assert_eq!(st.to_string(), "STG [r2+0x0], r3");
    }
}
