//! Metadata (release flag) instructions — the paper's Figure 5.
//!
//! Two metadata instruction kinds convey compiler-computed register
//! lifetime information to the hardware:
//!
//! * [`Pir`] — *per-instruction release flags*: 18 three-bit groups,
//!   one group per following instruction in the basic block, one bit
//!   per source-operand slot. A set bit means "the register in this
//!   operand slot is dead after this read and may be released".
//! * [`Pbr`] — *per-branch release flags*: up to nine 6-bit architected
//!   register ids released unconditionally at a reconvergence point.
//!
//! Both are encoded in a 64-bit word (CUDA code is 64-bit aligned) with
//! a 10-bit opcode split into a low 4-bit field and a high 6-bit field,
//! mirroring the Fermi encoding the paper cites, leaving exactly 54
//! payload bits.

use std::fmt;

use crate::reg::ArchReg;
use crate::MAX_SRC_OPERANDS;

/// Number of following instructions one `pir` covers.
pub const PIR_COVERAGE: usize = 18;

/// Maximum register ids one `pbr` can carry.
pub const PBR_CAPACITY: usize = 9;

/// 10-bit opcode value reserved for `pir` (arbitrary unused encoding).
pub const PIR_OPCODE: u16 = 0x3e5;

/// 10-bit opcode value reserved for `pbr`.
pub const PBR_OPCODE: u16 = 0x3e6;

/// 6-bit sentinel meaning "no register" in a `pbr` slot (63 is not a
/// valid architected register id, the Fermi per-thread limit being 63
/// registers `r0..r62`).
const PBR_EMPTY: u64 = 0x3f;

/// The release flags for one instruction: one bit per source-operand
/// slot (at most [`MAX_SRC_OPERANDS`] = 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ReleaseFlags(u8);

impl ReleaseFlags {
    /// No operand released.
    pub const NONE: ReleaseFlags = ReleaseFlags(0);

    /// Creates flags from a 3-bit mask (bit *i* = operand slot *i*).
    ///
    /// # Panics
    ///
    /// Panics if bits above the third are set.
    pub fn from_bits(bits: u8) -> ReleaseFlags {
        assert!(bits < 8, "release flags use only 3 bits, got {bits:#x}");
        ReleaseFlags(bits)
    }

    /// The raw 3-bit mask.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether the register in operand slot `slot` is released after
    /// the read.
    pub fn releases(self, slot: usize) -> bool {
        assert!(slot < MAX_SRC_OPERANDS, "operand slot {slot} out of range");
        self.0 & (1 << slot) != 0
    }

    /// Marks operand slot `slot` as released.
    pub fn set(&mut self, slot: usize) {
        assert!(slot < MAX_SRC_OPERANDS, "operand slot {slot} out of range");
        self.0 |= 1 << slot;
    }

    /// Whether any operand is released.
    pub fn any(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for ReleaseFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03b}", self.0)
    }
}

/// A *per-instruction release* metadata instruction (Figure 5a).
///
/// Placed at the head of a basic block (and every 18 instructions
/// within one), it carries the release flags for the 18 instructions
/// that follow it.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Pir {
    flags: [ReleaseFlags; PIR_COVERAGE],
}

impl Pir {
    /// A `pir` releasing nothing.
    pub fn new() -> Pir {
        Pir::default()
    }

    /// The flags for the `idx`-th following instruction.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 18`.
    pub fn flags(&self, idx: usize) -> ReleaseFlags {
        self.flags[idx]
    }

    /// Sets the flags for the `idx`-th following instruction.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 18`.
    pub fn set_flags(&mut self, idx: usize, flags: ReleaseFlags) {
        self.flags[idx] = flags;
    }

    /// Whether the `pir` releases anything at all.
    pub fn any(&self) -> bool {
        self.flags.iter().any(|f| f.any())
    }

    /// Total number of release bits set.
    pub fn release_count(&self) -> usize {
        self.flags
            .iter()
            .map(|f| f.bits().count_ones() as usize)
            .sum()
    }

    /// The 54-bit payload: 18 consecutive 3-bit groups, instruction 0
    /// in the least-significant bits.
    pub fn payload(&self) -> u64 {
        self.flags
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, f)| acc | (u64::from(f.bits()) << (3 * i)))
    }

    /// Reconstructs a `pir` from a 54-bit payload.
    pub fn from_payload(payload: u64) -> Pir {
        let mut pir = Pir::new();
        for i in 0..PIR_COVERAGE {
            pir.flags[i] = ReleaseFlags::from_bits(((payload >> (3 * i)) & 0b111) as u8);
        }
        pir
    }

    /// Encodes the full 64-bit metadata instruction word.
    pub fn encode(&self) -> u64 {
        encode_word(PIR_OPCODE, self.payload())
    }
}

impl fmt::Display for Pir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".pir")?;
        for flags in self.flags.iter().rev() {
            write!(f, " {flags:?}")?;
        }
        Ok(())
    }
}

/// A *per-branch release* metadata instruction (Figure 5b).
///
/// Placed at the start of a reconvergence block, it lists architected
/// registers whose conservative release point is that reconvergence.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Pbr {
    regs: Vec<ArchReg>,
}

impl Pbr {
    /// A `pbr` releasing nothing.
    pub fn new() -> Pbr {
        Pbr::default()
    }

    /// Builds a `pbr` from a register list.
    ///
    /// # Errors
    ///
    /// Fails when more than nine registers are supplied; the compiler
    /// is responsible for splitting longer lists across several `pbr`s.
    pub fn from_regs(regs: Vec<ArchReg>) -> Result<Pbr, PbrOverflow> {
        if regs.len() > PBR_CAPACITY {
            return Err(PbrOverflow { count: regs.len() });
        }
        Ok(Pbr { regs })
    }

    /// Appends a register; fails when already full.
    pub fn push(&mut self, reg: ArchReg) -> Result<(), PbrOverflow> {
        if self.regs.len() == PBR_CAPACITY {
            return Err(PbrOverflow {
                count: PBR_CAPACITY + 1,
            });
        }
        self.regs.push(reg);
        Ok(())
    }

    /// The registers released at this point.
    pub fn regs(&self) -> &[ArchReg] {
        &self.regs
    }

    /// Number of registers released.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the `pbr` releases nothing.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The 54-bit payload: nine consecutive 6-bit groups, slot 0 in the
    /// least-significant bits, unused slots holding the sentinel 63.
    pub fn payload(&self) -> u64 {
        let mut payload = 0u64;
        for slot in 0..PBR_CAPACITY {
            let v = self
                .regs
                .get(slot)
                .map_or(PBR_EMPTY, |r| u64::from(r.raw()));
            payload |= v << (6 * slot);
        }
        payload
    }

    /// Reconstructs a `pbr` from a 54-bit payload.
    ///
    /// Unknown 6-bit values other than the empty sentinel are invalid.
    pub fn from_payload(payload: u64) -> Result<Pbr, DecodeError> {
        let mut regs = Vec::new();
        for slot in 0..PBR_CAPACITY {
            let v = ((payload >> (6 * slot)) & 0x3f) as u8;
            if u64::from(v) == PBR_EMPTY {
                continue;
            }
            let reg = ArchReg::try_new(v).ok_or(DecodeError::BadRegisterId(v))?;
            regs.push(reg);
        }
        Ok(Pbr { regs })
    }

    /// Encodes the full 64-bit metadata instruction word.
    pub fn encode(&self) -> u64 {
        encode_word(PBR_OPCODE, self.payload())
    }
}

impl fmt::Display for Pbr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".pbr")?;
        for r in &self.regs {
            write!(f, " {r}")?;
        }
        Ok(())
    }
}

/// Error: more than nine registers pushed into one `pbr`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PbrOverflow {
    /// The offending register count.
    pub count: usize,
}

impl fmt::Display for PbrOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pbr can carry at most {PBR_CAPACITY} registers, got {}",
            self.count
        )
    }
}

impl std::error::Error for PbrOverflow {}

/// A decoded metadata instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MetaInstr {
    /// Per-instruction release flags.
    Pir(Pir),
    /// Per-branch release flags.
    Pbr(Pbr),
}

/// Error decoding a 64-bit metadata word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The 10-bit opcode is neither `pir` nor `pbr`.
    UnknownOpcode(u16),
    /// A `pbr` slot held an invalid register id.
    BadRegisterId(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => {
                write!(f, "unknown metadata opcode {op:#05x}")
            }
            DecodeError::BadRegisterId(id) => {
                write!(f, "invalid architected register id {id} in pbr payload")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a 64-bit metadata word into a [`MetaInstr`].
///
/// # Errors
///
/// Returns [`DecodeError::UnknownOpcode`] for unreserved opcodes and
/// [`DecodeError::BadRegisterId`] for malformed `pbr` payloads.
pub fn decode(word: u64) -> Result<MetaInstr, DecodeError> {
    let (opcode, payload) = split_word(word);
    match opcode {
        PIR_OPCODE => Ok(MetaInstr::Pir(Pir::from_payload(payload))),
        PBR_OPCODE => Ok(MetaInstr::Pbr(Pbr::from_payload(payload)?)),
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

/// Packs a 10-bit opcode (split 4 low + 6 high, Fermi-style) and a
/// 54-bit payload into one 64-bit word.
fn encode_word(opcode: u16, payload: u64) -> u64 {
    debug_assert!(opcode < 1 << 10);
    debug_assert!(payload < 1 << 54);
    let low4 = u64::from(opcode) & 0xf;
    let high6 = u64::from(opcode) >> 4;
    low4 | (payload << 4) | (high6 << 58)
}

/// Inverse of [`encode_word`].
fn split_word(word: u64) -> (u16, u64) {
    let low4 = word & 0xf;
    let high6 = word >> 58;
    let opcode = (low4 | (high6 << 4)) as u16;
    let payload = (word >> 4) & ((1 << 54) - 1);
    (opcode, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_flags_bits() {
        let mut f = ReleaseFlags::NONE;
        assert!(!f.any());
        f.set(0);
        f.set(2);
        assert!(f.releases(0) && !f.releases(1) && f.releases(2));
        assert_eq!(f.bits(), 0b101);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn release_flags_slot_bounds() {
        ReleaseFlags::NONE.releases(3);
    }

    #[test]
    fn pir_roundtrip() {
        let mut pir = Pir::new();
        let mut f = ReleaseFlags::NONE;
        f.set(1);
        pir.set_flags(0, f);
        pir.set_flags(17, ReleaseFlags::from_bits(0b111));
        let decoded = Pir::from_payload(pir.payload());
        assert_eq!(decoded, pir);
        assert_eq!(pir.release_count(), 4);
    }

    #[test]
    fn pir_word_roundtrip() {
        let mut pir = Pir::new();
        pir.set_flags(5, ReleaseFlags::from_bits(0b011));
        match decode(pir.encode()).unwrap() {
            MetaInstr::Pir(p) => assert_eq!(p, pir),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn pbr_roundtrip() {
        let regs = vec![ArchReg::new(0), ArchReg::new(62), ArchReg::new(31)];
        let pbr = Pbr::from_regs(regs.clone()).unwrap();
        match decode(pbr.encode()).unwrap() {
            MetaInstr::Pbr(p) => assert_eq!(p.regs(), regs.as_slice()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn pbr_capacity_enforced() {
        let regs = (0..10).map(ArchReg::new).collect();
        assert!(Pbr::from_regs(regs).is_err());
        let mut pbr = Pbr::from_regs((0..9).map(ArchReg::new).collect()).unwrap();
        assert_eq!(pbr.len(), PBR_CAPACITY);
        assert!(pbr.push(ArchReg::new(20)).is_err());
    }

    #[test]
    fn pbr_empty_slots_are_sentinels() {
        let pbr = Pbr::new();
        assert!(pbr.is_empty());
        // all nine slots hold 0b111111
        assert_eq!(
            pbr.payload(),
            (0..9).fold(0u64, |a, i| a | (0x3f << (6 * i)))
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode(0), Err(DecodeError::UnknownOpcode(0)));
    }

    #[test]
    fn opcode_split_is_fermi_style() {
        // 10-bit opcode 0b1111100101 splits into high6=111110, low4=0101
        let word = encode_word(PIR_OPCODE, 0);
        assert_eq!(word & 0xf, u64::from(PIR_OPCODE) & 0xf);
        assert_eq!(word >> 58, u64::from(PIR_OPCODE) >> 4);
        let (op, payload) = split_word(word);
        assert_eq!(op, PIR_OPCODE);
        assert_eq!(payload, 0);
    }

    #[test]
    fn display_forms() {
        let mut pir = Pir::new();
        pir.set_flags(0, ReleaseFlags::from_bits(0b001));
        assert!(pir.to_string().starts_with(".pir"));
        let pbr = Pbr::from_regs(vec![ArchReg::R3]).unwrap();
        assert_eq!(pbr.to_string(), ".pbr r3");
    }
}
