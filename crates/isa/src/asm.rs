//! A text assembler for the disassembly syntax: parse what
//! [`Kernel::disassemble`] prints (plus labels) back into a [`Kernel`].
//!
//! Grammar, one item per line:
//!
//! ```text
//! /*0010*/  IADD r4, r5, 0x10        ; leading address comments optional
//! @!p0 BRA -> 0x6                    ; absolute slot target…
//! @p1 BRA -> loop                    ; …or a label reference
//! loop:                              ; label definition
//! LDG r0, [r2+0x40]
//! STG [r2+0x0], r3
//! ISETP.NE p0, r8, 0x0
//! SEL r3, r2, 0x7, p2
//! S2R.TID.X r0
//! .pir 000 000 …                     ; 18 groups, most-significant first
//! .pbr r3 r7
//! EXIT
//! ```
//!
//! `#`/`;`-prefixed comments and blank lines are ignored.

use std::collections::HashMap;
use std::fmt;

use crate::instr::{Instr, Operand, PredGuard};
use crate::kernel::{Kernel, LaunchConfig, ProgItem};
use crate::meta::{Pbr, Pir, ReleaseFlags, PIR_COVERAGE};
use crate::op::{Cond, Opcode, Special};
use crate::reg::{ArchReg, Pred};

/// Parse failure, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses assembly text into a kernel.
///
/// # Errors
///
/// Returns the first syntax error, unresolved label, or kernel
/// validation failure.
pub fn parse_kernel(
    name: impl Into<String>,
    text: &str,
    launch: LaunchConfig,
) -> Result<Kernel, ParseError> {
    let mut items: Vec<ProgItem> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut fixups: Vec<(usize, String, usize)> = Vec::new(); // (slot, label, line)

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw.trim();
        // strip a leading /*addr*/ comment
        if let Some(rest) = line.strip_prefix("/*") {
            match rest.split_once("*/") {
                Some((_, tail)) => line = tail.trim(),
                None => return err(line_no, "unterminated /*address*/ comment"),
            }
        }
        // strip trailing comments
        if let Some(pos) = line.find([';', '#']) {
            line = line[..pos].trim();
        }
        if line.is_empty() {
            continue;
        }
        // label definition
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return err(line_no, format!("bad label `{label}`"));
            }
            if labels.insert(label.to_string(), items.len()).is_some() {
                return err(line_no, format!("duplicate label `{label}`"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(".pir") {
            items.push(ProgItem::Pir(parse_pir(rest, line_no)?));
            continue;
        }
        if let Some(rest) = line.strip_prefix(".pbr") {
            items.push(ProgItem::Pbr(parse_pbr(rest, line_no)?));
            continue;
        }
        let (instr, label_ref) = parse_instr(line, line_no)?;
        if let Some(label) = label_ref {
            fixups.push((items.len(), label, line_no));
        }
        items.push(ProgItem::Instr(instr));
    }

    for (slot, label, line_no) in fixups {
        let Some(&target) = labels.get(&label) else {
            return err(line_no, format!("unresolved label `{label}`"));
        };
        if let ProgItem::Instr(i) = &mut items[slot] {
            i.target = Some(target);
        }
    }

    Kernel::new(name, items, launch).map_err(|e| ParseError {
        line: 0,
        message: e,
    })
}

fn parse_pir(rest: &str, line: usize) -> Result<Pir, ParseError> {
    let groups: Vec<&str> = rest.split_whitespace().collect();
    if groups.len() != PIR_COVERAGE {
        return err(
            line,
            format!(
                ".pir needs {PIR_COVERAGE} flag groups, got {}",
                groups.len()
            ),
        );
    }
    let mut pir = Pir::new();
    // printed most-significant (instruction 17) first
    for (i, g) in groups.iter().enumerate() {
        let bits = u8::from_str_radix(g, 2).map_err(|_| ParseError {
            line,
            message: format!("bad flag group `{g}`"),
        })?;
        if bits >= 8 {
            return err(line, format!("flag group `{g}` exceeds 3 bits"));
        }
        pir.set_flags(PIR_COVERAGE - 1 - i, ReleaseFlags::from_bits(bits));
    }
    Ok(pir)
}

fn parse_pbr(rest: &str, line: usize) -> Result<Pbr, ParseError> {
    let mut pbr = Pbr::new();
    for tok in rest.split_whitespace() {
        let reg = parse_reg(tok, line)?;
        pbr.push(reg).map_err(|e| ParseError {
            line,
            message: e.to_string(),
        })?;
    }
    Ok(pbr)
}

fn parse_reg(tok: &str, line: usize) -> Result<ArchReg, ParseError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(ArchReg::try_new)
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad register `{tok}`"),
        })
}

fn parse_pred(tok: &str, line: usize) -> Result<Pred, ParseError> {
    match tok {
        "p0" => Ok(Pred::P0),
        "p1" => Ok(Pred::P1),
        "p2" => Ok(Pred::P2),
        "p3" => Ok(Pred::P3),
        _ => err(line, format!("bad predicate `{tok}`")),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, ParseError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).map(|v| v as i32)
    } else {
        body.parse::<i32>()
    };
    match value {
        Ok(v) => Ok(if neg { v.wrapping_neg() } else { v }),
        Err(_) => err(line, format!("bad immediate `{tok}`")),
    }
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(Operand::Reg(parse_reg(tok, line)?))
    } else {
        Ok(Operand::Imm(parse_imm(tok, line)?))
    }
}

/// Parses `[rN+0xOFF]` or `[0xADDR+0xOFF]` into (address operand, offset).
fn parse_mem(tok: &str, line: usize) -> Result<(Operand, i32), ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad memory operand `{tok}`"),
        })?;
    match inner.rsplit_once('+') {
        Some((base, off)) => Ok((parse_operand(base, line)?, parse_imm(off, line)?)),
        None => Ok((parse_operand(inner, line)?, 0)),
    }
}

fn mnemonic_opcode(m: &str, line: usize) -> Result<Opcode, ParseError> {
    use Opcode::*;
    let cond = |c: &str| match c {
        "LT" => Some(Cond::Lt),
        "LE" => Some(Cond::Le),
        "GT" => Some(Cond::Gt),
        "GE" => Some(Cond::Ge),
        "EQ" => Some(Cond::Eq),
        "NE" => Some(Cond::Ne),
        _ => None,
    };
    if let Some(c) = m.strip_prefix("ISETP.") {
        return cond(c).map(Isetp).ok_or_else(|| ParseError {
            line,
            message: format!("bad condition `{c}`"),
        });
    }
    if let Some(c) = m.strip_prefix("FSETP.") {
        return cond(c).map(Fsetp).ok_or_else(|| ParseError {
            line,
            message: format!("bad condition `{c}`"),
        });
    }
    if let Some(s) = m.strip_prefix("S2R.") {
        let special = match s {
            "TID.X" => Special::TidX,
            "CTAID.X" => Special::CtaIdX,
            "NTID.X" => Special::NTidX,
            "NCTAID.X" => Special::NCtaIdX,
            "LANEID" => Special::LaneId,
            "WARPID" => Special::WarpId,
            _ => return err(line, format!("bad special register `{s}`")),
        };
        return Ok(S2r(special));
    }
    Ok(match m {
        "IADD" => Iadd,
        "ISUB" => Isub,
        "IMUL" => Imul,
        "IMAD" => Imad,
        "AND" => And,
        "OR" => Or,
        "XOR" => Xor,
        "SHL" => Shl,
        "SHR" => Shr,
        "MOV" => Mov,
        "IMIN" => Imin,
        "IMAX" => Imax,
        "SEL" => Sel,
        "FADD" => Fadd,
        "FMUL" => Fmul,
        "FFMA" => Ffma,
        "FMIN" => Fmin,
        "FMAX" => Fmax,
        "FRCP" => Frcp,
        "FSQRT" => Fsqrt,
        "FEXP" => Fexp,
        "FLOG" => Flog,
        "LDG" => Ldg,
        "STG" => Stg,
        "LDS" => Lds,
        "STS" => Sts,
        "LDL" => Ldl,
        "STL" => Stl,
        "BRA" => Bra,
        "BAR.SYNC" | "BAR" => Bar,
        "EXIT" => Exit,
        "NOP" => Nop,
        _ => return err(line, format!("unknown mnemonic `{m}`")),
    })
}

fn parse_instr(line_text: &str, line: usize) -> Result<(Instr, Option<String>), ParseError> {
    let mut rest = line_text;
    // optional guard
    let mut guard = None;
    if let Some(g) = rest.strip_prefix('@') {
        let (gtok, tail) = g
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParseError {
                line,
                message: "guard without instruction".into(),
            })?;
        let (negated, ptok) = match gtok.strip_prefix('!') {
            Some(p) => (true, p),
            None => (false, gtok),
        };
        guard = Some(PredGuard {
            pred: parse_pred(ptok, line)?,
            negated,
        });
        rest = tail.trim_start();
    }
    let (mnemonic, operands_text) = match rest.split_once(char::is_whitespace) {
        Some((m, t)) => (m, t.trim()),
        None => (rest, ""),
    };
    let opcode = mnemonic_opcode(mnemonic, line)?;
    let mut i = Instr::new(opcode);
    i.guard = guard;

    // branch: "-> 0x6" or "-> label"
    if opcode == Opcode::Bra {
        let target = operands_text
            .strip_prefix("->")
            .map(str::trim)
            .ok_or_else(|| ParseError {
                line,
                message: "BRA needs `-> target`".into(),
            })?;
        if let Some(hex) = target.strip_prefix("0x") {
            let t = usize::from_str_radix(hex, 16).map_err(|_| ParseError {
                line,
                message: format!("bad branch target `{target}`"),
            })?;
            i.target = Some(t);
            return Ok((i, None));
        }
        if let Ok(t) = target.parse::<usize>() {
            i.target = Some(t);
            return Ok((i, None));
        }
        i.target = Some(usize::MAX); // patched by the fixup pass
        return Ok((i, Some(target.to_string())));
    }

    let tokens: Vec<&str> = operands_text
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();

    if opcode.is_mem() {
        if opcode.is_load() {
            // LDG dst, [addr+off]
            if tokens.len() != 2 {
                return err(line, "load needs `dst, [addr+off]`");
            }
            i.dst = Some(parse_reg(tokens[0], line)?);
            let (addr, off) = parse_mem(tokens[1], line)?;
            i.srcs.push(addr);
            i.mem_offset = off;
        } else {
            // STG [addr+off], data
            if tokens.len() != 2 {
                return err(line, "store needs `[addr+off], data`");
            }
            let (addr, off) = parse_mem(tokens[0], line)?;
            let data = parse_operand(tokens[1], line)?;
            i.srcs.push(addr);
            i.srcs.push(data);
            i.mem_offset = off;
        }
        return Ok((i, None));
    }

    let mut toks = tokens.into_iter();
    if opcode.writes_reg() {
        let dst = toks.next().ok_or_else(|| ParseError {
            line,
            message: "missing destination".into(),
        })?;
        i.dst = Some(parse_reg(dst, line)?);
    } else if opcode.writes_pred() {
        let pdst = toks.next().ok_or_else(|| ParseError {
            line,
            message: "missing destination predicate".into(),
        })?;
        i.pdst = Some(parse_pred(pdst, line)?);
    }
    // SEL's trailing predicate source
    let remaining: Vec<&str> = toks.collect();
    let (srcs, psrc) = if opcode == Opcode::Sel {
        match remaining.split_last() {
            Some((last, rest)) => (rest.to_vec(), Some(parse_pred(last, line)?)),
            None => return err(line, "SEL needs sources and a predicate"),
        }
    } else {
        (remaining, None)
    };
    i.psrc = psrc;
    for s in srcs {
        i.srcs.push(parse_operand(s, line)?);
    }
    if let Err(e) = i.validate() {
        return err(line, e);
    }
    Ok((i, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    fn launch() -> LaunchConfig {
        LaunchConfig::new(2, 64, 2)
    }

    #[test]
    fn disassembly_roundtrips() {
        let mut b = KernelBuilder::new("rt");
        b.s2r(ArchReg::R0, Special::TidX);
        b.imad(
            ArchReg::R1,
            ArchReg::R0,
            Operand::Imm(4),
            Operand::Reg(ArchReg::R0),
        );
        b.ldg(ArchReg::R2, ArchReg::R1, 0x100);
        b.isetp(Cond::Ne, Pred::P2, ArchReg::R2, Operand::Imm(0));
        b.guard(PredGuard::if_false(Pred::P2));
        b.bra("end");
        b.sel(
            ArchReg::R3,
            Operand::Reg(ArchReg::R2),
            Operand::Imm(7),
            Pred::P2,
        );
        b.stg(ArchReg::R1, ArchReg::R3, 0x2000);
        b.label("end");
        b.exit();
        let k = b.build(launch()).unwrap();
        let text = k.disassemble();
        let parsed = parse_kernel("rt", &text, launch()).unwrap();
        assert_eq!(parsed, k);
    }

    #[test]
    fn compiled_disassembly_with_metadata_roundtrips() {
        use crate::meta::{Pbr, Pir, ReleaseFlags};
        let mut pir = Pir::new();
        pir.set_flags(2, ReleaseFlags::from_bits(0b101));
        let pbr = Pbr::from_regs(vec![ArchReg::new(9), ArchReg::new(44)]).unwrap();
        let mut b = KernelBuilder::new("m");
        b.mov(ArchReg::R0, 1);
        b.exit();
        let base = b.build(launch()).unwrap();
        let mut items = vec![ProgItem::Pir(pir), ProgItem::Pbr(pbr)];
        items.extend(base.items().iter().cloned());
        let k = Kernel::new("m", items, launch()).unwrap();
        let parsed = parse_kernel("m", &k.disassemble(), launch()).unwrap();
        assert_eq!(parsed, k);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let text = "
            MOV r0, 10
        top:
            IADD r0, r0, -1
            ISETP.GT p0, r0, 0x0
            @p0 BRA -> top
            @!p0 BRA -> done
            NOP
        done:
            EXIT
        ";
        let k = parse_kernel("l", text, launch()).unwrap();
        let instrs: Vec<_> = k.items().iter().filter_map(|i| i.as_instr()).collect();
        assert_eq!(instrs[3].target, Some(1));
        assert_eq!(instrs[4].target, Some(6));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
            # a comment
            MOV r0, 0x2a   ; trailing comment

            /*0008*/ EXIT
        ";
        let k = parse_kernel("c", text, launch()).unwrap();
        assert_eq!(k.num_machine_instrs(), 2);
        let mov = k.items()[0].as_instr().unwrap();
        assert_eq!(mov.srcs[0], Operand::Imm(0x2a));
    }

    #[test]
    fn negative_hex_immediates_parse_like_display_prints() {
        // Display prints -1 as 0xffffffff
        let text = "IADD r1, r0, 0xffffffff\nEXIT";
        let k = parse_kernel("n", text, launch()).unwrap();
        assert_eq!(k.items()[0].as_instr().unwrap().srcs[1], Operand::Imm(-1));
        // and explicit negatives work too
        let text = "IADD r1, r0, -5\nEXIT";
        let k = parse_kernel("n2", text, launch()).unwrap();
        assert_eq!(k.items()[0].as_instr().unwrap().srcs[1], Operand::Imm(-5));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_kernel("e", "MOV r0, 1\nBOGUS r1\nEXIT", launch()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("BOGUS"));
        let e = parse_kernel("e", "BRA -> nowhere\nEXIT", launch()).unwrap_err();
        assert!(e.message.contains("unresolved"));
        let e = parse_kernel("e", "LDG r0\nEXIT", launch()).unwrap_err();
        assert!(e.message.contains("load needs"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = parse_kernel("d", "x:\nx:\nEXIT", launch()).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn store_with_immediate_address_parses() {
        // spill code uses immediate base addresses
        let text = "STL [0x0+0x8], r3\nLDL r4, [0x0+0x8]\nEXIT";
        let k = parse_kernel("s", text, launch()).unwrap();
        let st = k.items()[0].as_instr().unwrap();
        assert_eq!(st.srcs[0], Operand::Imm(0));
        assert_eq!(st.mem_offset, 8);
    }
}
