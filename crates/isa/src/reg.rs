//! Register name spaces: architected registers, physical registers,
//! predicate registers, and the bank mapping the compiler assigns.

use std::fmt;

use crate::MAX_REGS_PER_THREAD;

/// Number of main register banks per SM (Fermi-style, paper §7.1:
/// "The 128KB register file in each SM is divided into four banks").
pub const NUM_REG_BANKS: usize = 4;

/// An architected (logical) register id, `r0..r62`.
///
/// Each thread may address up to 63 registers; ids fit in six bits,
/// which is what the per-branch release flag ([`crate::meta::Pbr`])
/// encoding relies on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Register `r0`.
    pub const R0: ArchReg = ArchReg(0);
    /// Register `r1`.
    pub const R1: ArchReg = ArchReg(1);
    /// Register `r2`.
    pub const R2: ArchReg = ArchReg(2);
    /// Register `r3`.
    pub const R3: ArchReg = ArchReg(3);
    /// Register `r4`.
    pub const R4: ArchReg = ArchReg(4);
    /// Register `r5`.
    pub const R5: ArchReg = ArchReg(5);
    /// Register `r6`.
    pub const R6: ArchReg = ArchReg(6);
    /// Register `r7`.
    pub const R7: ArchReg = ArchReg(7);

    /// Creates an architected register id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 63` (the Fermi per-thread limit).
    pub fn new(id: u8) -> ArchReg {
        assert!(
            (id as usize) < MAX_REGS_PER_THREAD,
            "architected register id {id} out of range (max {})",
            MAX_REGS_PER_THREAD - 1
        );
        ArchReg(id)
    }

    /// Fallible constructor; returns `None` when `id` is out of range.
    pub fn try_new(id: u8) -> Option<ArchReg> {
        ((id as usize) < MAX_REGS_PER_THREAD).then_some(ArchReg(id))
    }

    /// The raw register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw register index as `u8`.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// The register bank this architected register maps to in the
    /// absence of renaming.
    ///
    /// GPU compilers stripe operands across banks to avoid operand
    /// collector conflicts; the paper preserves this assignment when
    /// renaming ("we restrict register renaming to find a register
    /// within the same bank as the original bank", §7.1). We model the
    /// compiler's striping as `id mod 4`.
    pub fn bank(self) -> BankId {
        BankId::new(self.0 as usize % NUM_REG_BANKS)
    }

    /// Iterator over all valid architected register ids.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..MAX_REGS_PER_THREAD as u8).map(ArchReg)
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register bank index, `0..4`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(u8);

impl BankId {
    /// Creates a bank id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= NUM_REG_BANKS`.
    pub fn new(id: usize) -> BankId {
        assert!(id < NUM_REG_BANKS, "bank id {id} out of range");
        BankId(id as u8)
    }

    /// The raw bank index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all bank ids.
    pub fn all() -> impl Iterator<Item = BankId> {
        (0..NUM_REG_BANKS as u8).map(BankId)
    }
}

impl fmt::Debug for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// A physical warp-register id inside an SM's register file.
///
/// The baseline SM holds 1024 physical warp-registers (128 KB at
/// 32 lanes × 4 B each); GPU-shrink configurations hold fewer. Physical
/// register ids are SM-global: the bank is `id / (file_size / 4)`, so
/// the id alone identifies both the bank and the entry within it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(u16);

impl PhysReg {
    /// Creates a physical register id.
    pub fn new(id: u16) -> PhysReg {
        PhysReg(id)
    }

    /// The raw physical register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw physical register index as `u16`.
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A predicate register, `p0..p3`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(u8);

/// Number of predicate registers per thread.
pub const NUM_PREDS: usize = 4;

impl Pred {
    /// Predicate `p0`.
    pub const P0: Pred = Pred(0);
    /// Predicate `p1`.
    pub const P1: Pred = Pred(1);
    /// Predicate `p2`.
    pub const P2: Pred = Pred(2);
    /// Predicate `p3`.
    pub const P3: Pred = Pred(3);

    /// Creates a predicate register id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 4`.
    pub fn new(id: u8) -> Pred {
        assert!((id as usize) < NUM_PREDS, "predicate id {id} out of range");
        Pred(id)
    }

    /// The raw predicate index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_range() {
        assert_eq!(ArchReg::new(0).index(), 0);
        assert_eq!(ArchReg::new(62).index(), 62);
        assert!(ArchReg::try_new(63).is_none());
        assert!(ArchReg::try_new(62).is_some());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_oob_panics() {
        let _ = ArchReg::new(63);
    }

    #[test]
    fn bank_striping_is_mod_4() {
        assert_eq!(ArchReg::new(0).bank(), BankId::new(0));
        assert_eq!(ArchReg::new(1).bank(), BankId::new(1));
        assert_eq!(ArchReg::new(5).bank(), BankId::new(1));
        assert_eq!(ArchReg::new(62).bank(), BankId::new(2));
    }

    #[test]
    fn all_regs_covers_63() {
        assert_eq!(ArchReg::all().count(), 63);
        let banks: Vec<usize> = BankId::all().map(|b| b.index()).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArchReg::new(7).to_string(), "r7");
        assert_eq!(PhysReg::new(1000).to_string(), "p1000");
        assert_eq!(Pred::P2.to_string(), "p2");
        assert_eq!(BankId::new(3).to_string(), "bank3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pred_oob_panics() {
        let _ = Pred::new(4);
    }
}
