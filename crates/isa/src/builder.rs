//! `KernelBuilder` — a tiny assembler with labels for authoring
//! kernels in Rust.

use std::collections::HashMap;
use std::fmt;

use crate::instr::{Instr, Operand, PredGuard};
use crate::kernel::{Kernel, LaunchConfig, ProgItem};
use crate::op::{Cond, Opcode, Special};
use crate::reg::{ArchReg, Pred};

/// Error produced while assembling a kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// A branch referenced a label that was never defined.
    UnresolvedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// An emitted instruction failed structural validation.
    InvalidInstr(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnresolvedLabel(l) => write!(f, "unresolved label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::InvalidInstr(e) => write!(f, "invalid instruction: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// An incremental kernel assembler.
///
/// Instructions are appended with one method per opcode; `label`
/// defines branch targets that may be referenced before or after their
/// definition. `guard` attaches a predicate guard to the *next*
/// emitted instruction.
///
/// ```
/// use rfv_isa::prelude::*;
///
/// let mut b = KernelBuilder::new("count_down");
/// let r0 = ArchReg::R0;
/// b.mov(r0, Operand::Imm(10));
/// b.label("loop");
/// b.iadd(r0, r0, Operand::Imm(-1));
/// b.isetp(Cond::Gt, Pred::P0, r0, Operand::Imm(0));
/// b.guard(PredGuard::if_true(Pred::P0));
/// b.bra("loop");
/// b.exit();
/// let k = b.build(LaunchConfig::new(1, 32, 1))?;
/// assert_eq!(k.num_machine_instrs(), 5);
/// # Ok::<(), rfv_isa::builder::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    pending_guard: Option<PredGuard>,
}

impl KernelBuilder {
    /// Creates a builder for a kernel named `name`.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            ..KernelBuilder::default()
        }
    }

    /// Number of instructions emitted so far (also: the PC the next
    /// instruction will occupy).
    pub fn pc(&self) -> usize {
        self.instrs.len()
    }

    /// Defines a label at the current PC.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition (an assembly bug, caught early).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.instrs.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Attaches a guard to the next emitted instruction.
    pub fn guard(&mut self, guard: PredGuard) -> &mut Self {
        self.pending_guard = Some(guard);
        self
    }

    fn emit(&mut self, mut instr: Instr) -> &mut Self {
        if let Some(g) = self.pending_guard.take() {
            instr.guard = Some(g);
        }
        self.instrs.push(instr);
        self
    }

    fn emit3(&mut self, opcode: Opcode, dst: ArchReg, srcs: Vec<Operand>) -> &mut Self {
        let mut i = Instr::new(opcode);
        i.dst = Some(dst);
        i.srcs = srcs;
        self.emit(i)
    }

    // --- moves and special registers ---

    /// `dst = src`
    pub fn mov(&mut self, dst: ArchReg, src: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Mov, dst, vec![src.into()])
    }

    /// `dst = special`
    pub fn s2r(&mut self, dst: ArchReg, special: Special) -> &mut Self {
        self.emit3(Opcode::S2r(special), dst, vec![])
    }

    // --- integer ALU ---

    /// `dst = a + b`
    pub fn iadd(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Iadd, dst, vec![a.into(), b.into()])
    }

    /// `dst = a - b`
    pub fn isub(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Isub, dst, vec![a.into(), b.into()])
    }

    /// `dst = a * b`
    pub fn imul(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Imul, dst, vec![a.into(), b.into()])
    }

    /// `dst = a * b + c`
    pub fn imad(
        &mut self,
        dst: ArchReg,
        a: ArchReg,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.emit3(Opcode::Imad, dst, vec![a.into(), b.into(), c.into()])
    }

    /// `dst = a & b`
    pub fn and(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::And, dst, vec![a.into(), b.into()])
    }

    /// `dst = a | b`
    pub fn or(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Or, dst, vec![a.into(), b.into()])
    }

    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Xor, dst, vec![a.into(), b.into()])
    }

    /// `dst = a << b`
    pub fn shl(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Shl, dst, vec![a.into(), b.into()])
    }

    /// `dst = a >> b`
    pub fn shr(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Shr, dst, vec![a.into(), b.into()])
    }

    /// `dst = min(a, b)` (signed)
    pub fn imin(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Imin, dst, vec![a.into(), b.into()])
    }

    /// `dst = max(a, b)` (signed)
    pub fn imax(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Imax, dst, vec![a.into(), b.into()])
    }

    /// `dst = pred ? a : b`
    pub fn sel(
        &mut self,
        dst: ArchReg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        pred: Pred,
    ) -> &mut Self {
        let mut i = Instr::new(Opcode::Sel);
        i.dst = Some(dst);
        i.srcs = vec![a.into(), b.into()];
        i.psrc = Some(pred);
        self.emit(i)
    }

    // --- float ALU ---

    /// `dst = a + b` (f32)
    pub fn fadd(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Fadd, dst, vec![a.into(), b.into()])
    }

    /// `dst = a * b` (f32)
    pub fn fmul(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Fmul, dst, vec![a.into(), b.into()])
    }

    /// `dst = a * b + c` (f32)
    pub fn ffma(
        &mut self,
        dst: ArchReg,
        a: ArchReg,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.emit3(Opcode::Ffma, dst, vec![a.into(), b.into(), c.into()])
    }

    /// `dst = min(a, b)` (f32)
    pub fn fmin(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Fmin, dst, vec![a.into(), b.into()])
    }

    /// `dst = max(a, b)` (f32)
    pub fn fmax(&mut self, dst: ArchReg, a: ArchReg, b: impl Into<Operand>) -> &mut Self {
        self.emit3(Opcode::Fmax, dst, vec![a.into(), b.into()])
    }

    // --- SFU ---

    /// `dst = 1 / a` (f32)
    pub fn frcp(&mut self, dst: ArchReg, a: ArchReg) -> &mut Self {
        self.emit3(Opcode::Frcp, dst, vec![a.into()])
    }

    /// `dst = sqrt(a)` (f32)
    pub fn fsqrt(&mut self, dst: ArchReg, a: ArchReg) -> &mut Self {
        self.emit3(Opcode::Fsqrt, dst, vec![a.into()])
    }

    /// `dst = exp2(a)` (f32)
    pub fn fexp(&mut self, dst: ArchReg, a: ArchReg) -> &mut Self {
        self.emit3(Opcode::Fexp, dst, vec![a.into()])
    }

    /// `dst = log2(a)` (f32)
    pub fn flog(&mut self, dst: ArchReg, a: ArchReg) -> &mut Self {
        self.emit3(Opcode::Flog, dst, vec![a.into()])
    }

    // --- predicates ---

    /// `pdst = a <cond> b` (signed)
    pub fn isetp(
        &mut self,
        cond: Cond,
        pdst: Pred,
        a: ArchReg,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instr::new(Opcode::Isetp(cond));
        i.pdst = Some(pdst);
        i.srcs = vec![a.into(), b.into()];
        self.emit(i)
    }

    /// `pdst = a <cond> b` (f32)
    pub fn fsetp(
        &mut self,
        cond: Cond,
        pdst: Pred,
        a: ArchReg,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instr::new(Opcode::Fsetp(cond));
        i.pdst = Some(pdst);
        i.srcs = vec![a.into(), b.into()];
        self.emit(i)
    }

    // --- memory ---

    fn emit_load(&mut self, op: Opcode, dst: ArchReg, addr: ArchReg, offset: i32) -> &mut Self {
        let mut i = Instr::new(op);
        i.dst = Some(dst);
        i.srcs = vec![addr.into()];
        i.mem_offset = offset;
        self.emit(i)
    }

    fn emit_store(&mut self, op: Opcode, addr: ArchReg, data: ArchReg, offset: i32) -> &mut Self {
        let mut i = Instr::new(op);
        i.srcs = vec![addr.into(), data.into()];
        i.mem_offset = offset;
        self.emit(i)
    }

    /// `dst = global[addr + offset]`
    pub fn ldg(&mut self, dst: ArchReg, addr: ArchReg, offset: i32) -> &mut Self {
        self.emit_load(Opcode::Ldg, dst, addr, offset)
    }

    /// `global[addr + offset] = data`
    pub fn stg(&mut self, addr: ArchReg, data: ArchReg, offset: i32) -> &mut Self {
        self.emit_store(Opcode::Stg, addr, data, offset)
    }

    /// `dst = shared[addr + offset]`
    pub fn lds(&mut self, dst: ArchReg, addr: ArchReg, offset: i32) -> &mut Self {
        self.emit_load(Opcode::Lds, dst, addr, offset)
    }

    /// `shared[addr + offset] = data`
    pub fn sts(&mut self, addr: ArchReg, data: ArchReg, offset: i32) -> &mut Self {
        self.emit_store(Opcode::Sts, addr, data, offset)
    }

    /// `dst = local[addr + offset]` (spill fill)
    pub fn ldl(&mut self, dst: ArchReg, addr: ArchReg, offset: i32) -> &mut Self {
        self.emit_load(Opcode::Ldl, dst, addr, offset)
    }

    /// `local[addr + offset] = data` (spill)
    pub fn stl(&mut self, addr: ArchReg, data: ArchReg, offset: i32) -> &mut Self {
        self.emit_store(Opcode::Stl, addr, data, offset)
    }

    // --- control ---

    /// Branch to `label` (honours a pending guard for conditional
    /// branches).
    pub fn bra(&mut self, label: impl Into<String>) -> &mut Self {
        let fixup_pc = self.instrs.len();
        self.fixups.push((fixup_pc, label.into()));
        let mut i = Instr::new(Opcode::Bra);
        i.target = Some(usize::MAX); // patched by build()
        self.emit(i)
    }

    /// CTA-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.emit(Instr::new(Opcode::Bar))
    }

    /// Thread exit.
    pub fn exit(&mut self) -> &mut Self {
        self.emit(Instr::new(Opcode::Exit))
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::new(Opcode::Nop))
    }

    /// Resolves labels and produces the final [`Kernel`].
    ///
    /// # Errors
    ///
    /// Fails on unresolved labels or structurally invalid instructions.
    pub fn build(mut self, launch: LaunchConfig) -> Result<Kernel, BuildError> {
        for (pc, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UnresolvedLabel(label.clone()))?;
            self.instrs[*pc].target = Some(target);
        }
        let items = self.instrs.into_iter().map(ProgItem::Instr).collect();
        Kernel::new(self.name, items, launch).map_err(BuildError::InvalidInstr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = KernelBuilder::new("t");
        b.mov(ArchReg::R0, 0);
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("end"); // forward reference
        b.label("loop");
        b.iadd(ArchReg::R0, ArchReg::R0, 1);
        b.bra("loop"); // backward reference
        b.label("end");
        b.exit();
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let instrs: Vec<_> = k.items().iter().filter_map(|i| i.as_instr()).collect();
        assert_eq!(instrs[1].target, Some(4)); // "end" is the EXIT at pc 4
        assert_eq!(instrs[3].target, Some(2)); // "loop" is the IADD at pc 2
    }

    #[test]
    fn unresolved_label_fails() {
        let mut b = KernelBuilder::new("t");
        b.bra("nowhere");
        b.exit();
        assert_eq!(
            b.build(LaunchConfig::new(1, 32, 1)),
            Err(BuildError::UnresolvedLabel("nowhere".into()))
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = KernelBuilder::new("t");
        b.label("x");
        b.label("x");
    }

    #[test]
    fn guard_applies_to_next_instruction_only() {
        let mut b = KernelBuilder::new("t");
        b.guard(PredGuard::if_false(Pred::P1));
        b.iadd(ArchReg::R0, ArchReg::R0, 1);
        b.iadd(ArchReg::R1, ArchReg::R1, 1);
        b.exit();
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let instrs: Vec<_> = k.items().iter().filter_map(|i| i.as_instr()).collect();
        assert!(instrs[0].guard.is_some());
        assert!(instrs[1].guard.is_none());
    }

    #[test]
    fn memory_forms() {
        let mut b = KernelBuilder::new("t");
        b.ldg(ArchReg::R1, ArchReg::R0, 16);
        b.stg(ArchReg::R0, ArchReg::R1, 32);
        b.lds(ArchReg::R2, ArchReg::R0, 0);
        b.sts(ArchReg::R0, ArchReg::R2, 0);
        b.ldl(ArchReg::R3, ArchReg::R0, 4);
        b.stl(ArchReg::R0, ArchReg::R3, 4);
        b.exit();
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        assert_eq!(k.num_machine_instrs(), 7);
        assert_eq!(k.num_regs(), 4);
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let mut b = KernelBuilder::new("axpy");
        b.s2r(ArchReg::R0, Special::TidX);
        b.imad(ArchReg::R0, ArchReg::R0, Operand::Imm(4), Operand::Imm(0));
        b.ldg(ArchReg::R1, ArchReg::R0, 0);
        b.fmul(ArchReg::R1, ArchReg::R1, Operand::Imm(0x40000000)); // 2.0f
        b.stg(ArchReg::R0, ArchReg::R1, 4096);
        b.exit();
        let k = b.build(LaunchConfig::new(4, 128, 4)).unwrap();
        assert_eq!(k.num_regs(), 2);
        assert_eq!(k.launch().warps_per_cta(), 4);
    }
}
