//! # rfv-isa — a compact SASS-like GPU instruction set
//!
//! This crate defines the instruction set used by the whole `rfv`
//! workspace, which reproduces *GPU Register File Virtualization*
//! (Jeon, Ravi, Kim, Annavaram — MICRO-48, 2015).
//!
//! The ISA is intentionally close to the Fermi/PTXPlus-level code the
//! paper analyzes:
//!
//! * up to 63 architected registers per thread ([`ArchReg`]), each
//!   32 bits wide per lane;
//! * at most **three register source operands** per instruction — the
//!   property the paper's 3-bit per-instruction release flags rely on;
//! * predicated execution with four predicate registers ([`Pred`]);
//! * explicit **metadata instructions** ([`meta::Pir`], [`meta::Pbr`])
//!   carrying compiler-computed register release points, encoded in the
//!   64-bit flag-set format of the paper's Figure 5 (10-bit opcode split
//!   4 + 6 to follow the Fermi encoding, 54 payload bits);
//! * kernels with CUDA-style launch geometry ([`kernel::LaunchConfig`]).
//!
//! Programs are written with [`builder::KernelBuilder`], a tiny
//! assembler with labels:
//!
//! ```
//! use rfv_isa::prelude::*;
//!
//! let mut b = KernelBuilder::new("axpy");
//! let (r0, r1, r2, r3) = (ArchReg::R0, ArchReg::R1, ArchReg::R2, ArchReg::R3);
//! b.s2r(r0, Special::TidX);
//! b.s2r(r1, Special::CtaIdX);
//! b.imad(r0, r1, Operand::Imm(256), Operand::Reg(r0)); // global tid
//! b.shl(r2, r0, 2);                                    // byte offset
//! b.ldg(r3, r2, 0);
//! b.iadd(r3, r3, Operand::Imm(1));
//! b.stg(r2, r3, 4096);
//! b.exit();
//! let kernel = b.build(LaunchConfig::new(196, 256, 6))?;
//! assert_eq!(kernel.num_regs(), 4);
//! # Ok::<(), rfv_isa::builder::BuildError>(())
//! ```

pub mod asm;
pub mod binary;
pub mod builder;
pub mod instr;
pub mod kernel;
pub mod meta;
pub mod op;
pub mod reg;

pub use asm::{parse_kernel, ParseError};
pub use binary::{decode_kernel, encode_kernel, BinaryError};
pub use builder::KernelBuilder;
pub use instr::{Instr, Operand, PredGuard};
pub use kernel::{Kernel, LaunchConfig};
pub use meta::{Pbr, Pir, ReleaseFlags};
pub use op::{Cond, ExecClass, Opcode, Special};
pub use reg::{ArchReg, BankId, PhysReg, Pred, NUM_REG_BANKS};

/// Convenient glob-import of the types needed to write kernels.
pub mod prelude {
    pub use crate::builder::KernelBuilder;
    pub use crate::instr::{Instr, Operand, PredGuard};
    pub use crate::kernel::{Kernel, LaunchConfig};
    pub use crate::op::{Cond, Opcode, Special};
    pub use crate::reg::{ArchReg, Pred};
}

/// Number of threads in a warp (fixed at 32, as in all NVIDIA GPUs the
/// paper considers).
pub const WARP_SIZE: usize = 32;

/// Maximum number of architected registers a single thread may use
/// (Fermi limit quoted in the paper: 63, identifiable by six bits).
pub const MAX_REGS_PER_THREAD: usize = 63;

/// Maximum number of register source operands per instruction.
pub const MAX_SRC_OPERANDS: usize = 3;
