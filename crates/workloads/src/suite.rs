//! The sixteen synthetic benchmarks reproducing Table 1.
//!
//! Each kernel matches its paper counterpart's launch geometry
//! (CTAs, threads/CTA, concurrent CTAs/SM), its *exact* per-thread
//! register count, and its control-flow class (streaming, blocked
//! GEMM, tree reduction, frontier traversal, stencil, Monte Carlo,
//! pointer chasing, …) — the four properties that determine register
//! virtualization behaviour.
//!
//! Grids are capped at a few waves of concurrent CTAs
//! ([`SIM_WAVES`]) so simulations finish quickly; per-SM behaviour
//! reaches steady state within one wave.

use rfv_isa::prelude::*;
use rfv_isa::{ArchReg as R, PredGuard, Special};

use crate::table1::{paper_geometry, PaperGeometry};

/// Waves of concurrent CTAs simulated per benchmark.
pub const SIM_WAVES: u32 = 3;

/// Global-memory buffer base addresses used by all kernels.
pub mod buffers {
    /// Input buffer A.
    pub const A: i32 = 0x0010_0000;
    /// Input buffer B.
    pub const B: i32 = 0x0020_0000;
    /// Output buffer C.
    pub const C: i32 = 0x0030_0000;
    /// Output buffer D.
    pub const D: i32 = 0x0040_0000;
    /// Output buffer E.
    pub const E: i32 = 0x0050_0000;
    /// Output buffer F.
    pub const F: i32 = 0x0060_0000;
}
use buffers::{A, B, C, D, E, F};

/// A ready-to-compile benchmark.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Paper geometry (Table 1 row).
    pub paper: PaperGeometry,
    /// The kernel, with the (capped) simulation launch configuration.
    pub kernel: Kernel,
}

impl Workload {
    /// The benchmark name.
    pub fn name(&self) -> &'static str {
        self.paper.name
    }
}

fn r(i: u8) -> R {
    R::new(i)
}

fn fimm(x: f32) -> Operand {
    Operand::Imm(x.to_bits() as i32)
}

fn launch_for(g: PaperGeometry) -> LaunchConfig {
    let grid = g.ctas.min(g.conc_ctas * SIM_WAVES).max(1);
    LaunchConfig::new(grid, g.threads_per_cta, g.conc_ctas)
}

fn build(name: &'static str, f: impl FnOnce(&mut KernelBuilder)) -> Workload {
    let paper = paper_geometry(name).expect("benchmark in Table 1");
    let mut b = KernelBuilder::new(name);
    f(&mut b);
    let kernel = b.build(launch_for(paper)).expect("suite kernels are valid");
    assert_eq!(
        kernel.num_regs(),
        paper.regs_per_kernel,
        "{name}: register count drifted from Table 1"
    );
    Workload { paper, kernel }
}

/// Blocked 16×16 GEMM with shared-memory tiles and a uniform k-loop
/// (the paper's Figure 2/3 running example).
pub fn matrixmul() -> Workload {
    build("MatrixMul", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.and(r(2), r(0), 15); // col within tile
        b.shr(r(3), r(0), 4); // row within tile
        b.mov(r(4), fimm(0.0)); // acc
        b.mov(r(10), 4); // tile counter (uniform)
        b.label("tile");
        b.imad(r(11), r(10), 256, Operand::Reg(r(0)));
        b.imad(r(11), r(1), 256, Operand::Reg(r(11)));
        b.shl(r(11), r(11), 2);
        b.ldg(r(5), r(11), A);
        b.ldg(r(6), r(11), B);
        b.shl(r(7), r(0), 2);
        b.sts(r(7), r(5), 0);
        b.sts(r(7), r(6), 1024);
        b.bar();
        b.mov(r(8), 16); // k loop (uniform)
        b.label("k");
        b.imad(r(9), r(3), 16, Operand::Reg(r(8)));
        b.iadd(r(9), r(9), -1); // index row*16 + (k-1)
        b.shl(r(9), r(9), 2);
        b.lds(r(5), r(9), 0);
        b.imad(r(9), r(8), 16, Operand::Reg(r(2)));
        b.iadd(r(9), r(9), -16); // index (k-1)*16 + col
        b.shl(r(9), r(9), 2);
        b.lds(r(6), r(9), 1024);
        b.ffma(r(4), r(5), Operand::Reg(r(6)), Operand::Reg(r(4)));
        b.iadd(r(8), r(8), -1);
        b.isetp(Cond::Gt, Pred::P0, r(8), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("k");
        b.bar();
        b.iadd(r(10), r(10), -1);
        b.isetp(Cond::Gt, Pred::P0, r(10), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("tile");
        b.imad(r(12), r(1), 256, Operand::Reg(r(0)));
        b.shl(r(12), r(12), 2);
        b.mov(r(13), Operand::Reg(r(4)));
        b.stg(r(12), r(13), C);
        b.exit();
    })
}

/// Streaming option pricing: SFU-heavy straight-line code, no
/// branches.
pub fn blackscholes() -> Workload {
    build("BlackScholes", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 128, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.ldg(r(4), r(3), A); // S
        b.ldg(r(5), r(3), B); // X
        b.ldg(r(6), r(3), C); // T
        b.fsqrt(r(7), r(6));
        b.frcp(r(8), r(5));
        b.fmul(r(9), r(4), Operand::Reg(r(8)));
        b.flog(r(10), r(9));
        b.fmul(r(11), r(6), fimm(0.06));
        b.fadd(r(12), r(10), Operand::Reg(r(11)));
        b.frcp(r(13), r(7));
        b.fmul(r(13), r(12), Operand::Reg(r(13))); // d1
        b.fadd(r(14), r(13), fimm(-0.3)); // d2
        b.fexp(r(15), r(13));
        b.fexp(r(16), r(14));
        b.fmul(r(15), r(4), Operand::Reg(r(15)));
        b.fmul(r(16), r(5), Operand::Reg(r(16)));
        b.fadd(r(17), r(15), Operand::Reg(r(16))); // call
        b.stg(r(3), r(17), D);
        b.fadd(r(17), r(16), Operand::Reg(r(15))); // put (proxy)
        b.stg(r(3), r(17), E);
        b.exit();
    })
}

/// 8×8 block transform: two shared-memory passes separated by
/// barriers, uniform inner loops, arithmetic-dense.
pub fn dct8x8() -> Workload {
    build("DCT8x8", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.and(r(2), r(0), 7); // x
        b.shr(r(3), r(0), 3); // y
        b.imad(r(4), r(1), 64, Operand::Reg(r(0)));
        b.shl(r(5), r(4), 2);
        b.ldg(r(6), r(5), A);
        b.shl(r(7), r(0), 2);
        b.sts(r(7), r(6), 0);
        b.bar();
        // row pass
        b.mov(r(8), fimm(0.0));
        b.mov(r(9), 8);
        b.label("row");
        b.imad(r(10), r(3), 8, Operand::Reg(r(9)));
        b.iadd(r(10), r(10), -1); // index y*8 + (k-1)
        b.shl(r(10), r(10), 2);
        b.lds(r(11), r(10), 0);
        b.imad(r(12), r(9), 8, Operand::Reg(r(2)));
        b.iadd(r(12), r(12), -8); // index (k-1)*8 + x
        b.shl(r(12), r(12), 2);
        b.lds(r(13), r(12), 0);
        b.ffma(r(13), r(11), fimm(0.125), Operand::Reg(r(13)));
        b.fadd(r(8), r(8), Operand::Reg(r(13)));
        b.iadd(r(9), r(9), -1);
        b.isetp(Cond::Gt, Pred::P0, r(9), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("row");
        b.sts(r(7), r(8), 256);
        b.bar();
        // column pass
        b.mov(r(14), fimm(0.0));
        b.mov(r(15), 8);
        b.label("col");
        b.imad(r(16), r(15), 8, Operand::Reg(r(2)));
        b.iadd(r(16), r(16), -8); // index (k-1)*8 + x
        b.shl(r(16), r(16), 2);
        b.lds(r(17), r(16), 256);
        b.fmul(r(18), r(17), fimm(0.25));
        b.fadd(r(14), r(14), Operand::Reg(r(18)));
        b.iadd(r(15), r(15), -1);
        b.isetp(Cond::Gt, Pred::P0, r(15), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("col");
        b.fmul(r(19), r(14), fimm(0.5));
        b.fadd(r(20), r(19), Operand::Reg(r(8)));
        b.fmax(r(21), r(20), fimm(0.0));
        b.stg(r(5), r(21), C);
        b.exit();
    })
}

/// Shared-memory tree reduction with a per-step divergent guard.
pub fn reduction() -> Workload {
    build("Reduction", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 256, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.ldg(r(4), r(3), A);
        b.shl(r(5), r(0), 2);
        b.sts(r(5), r(4), 0);
        b.bar();
        b.mov(r(6), 128); // stride
        b.label("red");
        b.isetp(Cond::Lt, Pred::P0, r(0), Operand::Reg(r(6)));
        b.guard(PredGuard::if_false(Pred::P0));
        b.bra("skip");
        b.iadd(r(7), r(0), Operand::Reg(r(6)));
        b.shl(r(7), r(7), 2);
        b.lds(r(8), r(7), 0);
        b.lds(r(9), r(5), 0);
        b.fadd(r(9), r(9), Operand::Reg(r(8)));
        b.sts(r(5), r(9), 0);
        b.label("skip");
        b.bar();
        b.shr(r(6), r(6), 1);
        b.isetp(Cond::Gt, Pred::P0, r(6), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("red");
        b.isetp(Cond::Ne, Pred::P1, r(0), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P1));
        b.bra("end");
        b.lds(r(10), r(5), 0);
        b.shl(r(11), r(1), 2);
        b.fmul(r(12), r(10), fimm(1.0));
        b.fadd(r(13), r(12), fimm(0.0));
        b.stg(r(11), r(13), C);
        b.label("end");
        b.exit();
    })
}

/// The minimal streaming kernel: `c[i] = a[i] + b[i]`.
pub fn vectoradd() -> Workload {
    build("VectorAdd", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(0), r(1), 256, Operand::Reg(r(0)));
        b.shl(r(3), r(0), 2);
        b.ldg(r(1), r(3), A);
        b.ldg(r(2), r(3), B);
        b.fadd(r(1), r(1), Operand::Reg(r(2)));
        b.stg(r(3), r(1), C);
        b.exit();
    })
}

/// Neural-network training step: forward accumulation loop, sigmoid,
/// shared-memory exchange, weight update.
pub fn backprop() -> Workload {
    build("BackProp", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 256, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.ldg(r(4), r(3), A); // input
        b.mov(r(5), fimm(0.0)); // acc
        b.mov(r(6), 16); // layer loop (uniform)
        b.label("fwd");
        b.imad(r(7), r(6), 256, Operand::Reg(r(2)));
        b.shl(r(7), r(7), 2);
        b.ldg(r(8), r(7), B); // weight
        b.ffma(r(5), r(8), Operand::Reg(r(4)), Operand::Reg(r(5)));
        b.iadd(r(6), r(6), -1);
        b.isetp(Cond::Gt, Pred::P0, r(6), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("fwd");
        b.fexp(r(9), r(5));
        b.fadd(r(10), r(9), fimm(1.0));
        b.frcp(r(11), r(10)); // sigmoid proxy
        b.shl(r(12), r(0), 2);
        b.sts(r(12), r(11), 0);
        b.bar();
        b.lds(r(13), r(12), 0);
        b.fmul(r(14), r(13), fimm(0.3));
        b.fadd(r(15), r(14), Operand::Reg(r(11)));
        b.stg(r(3), r(15), C);
        b.fmul(r(16), r(15), fimm(2.0));
        b.stg(r(3), r(16), D);
        b.exit();
    })
}

/// Frontier graph traversal: data-dependent guard and a
/// data-dependent edge loop (highly divergent).
pub fn bfs() -> Workload {
    build("BFS", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 512, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.ldg(r(4), r(3), A); // frontier flag
        b.and(r(4), r(4), 1);
        b.mov(r(8), 1); // level value
        b.isetp(Cond::Eq, Pred::P0, r(4), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("end");
        b.ldg(r(5), r(3), B); // edge count
        b.and(r(5), r(5), 7);
        b.iadd(r(5), r(5), 1);
        b.label("edges");
        b.imad(r(7), r(5), 4, Operand::Reg(r(2)));
        b.shl(r(7), r(7), 2);
        b.ldg(r(6), r(7), C); // neighbor id
        b.and(r(6), r(6), 1023);
        b.shl(r(6), r(6), 2);
        b.stg(r(6), r(8), D); // set level
        b.iadd(r(5), r(5), -1);
        b.isetp(Cond::Gt, Pred::P0, r(5), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("edges");
        b.label("end");
        b.exit();
    })
}

/// Cardiac-wall tracking: a long arithmetic pipeline over windows of
/// frames, with a divergent threshold at the end. The register-fattest
/// kernel of the suite (29 registers).
pub fn heartwall() -> Workload {
    build("Heartwall", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 512, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.mov(r(4), fimm(0.0)); // SAD accumulator
        b.mov(r(5), 4); // frame loop (uniform)
        b.mov(r(26), 7); // diagnostic code, read at the very end
        b.label("frame");
        b.imad(r(6), r(5), 512, Operand::Reg(r(2)));
        b.shl(r(6), r(6), 2);
        b.ldg(r(7), r(6), A);
        b.ldg(r(8), r(6), B);
        b.ldg(r(9), r(6), C);
        b.ldg(r(10), r(6), D);
        b.fadd(r(11), r(7), Operand::Reg(r(8)));
        b.fadd(r(12), r(9), Operand::Reg(r(10)));
        b.fmul(r(13), r(11), fimm(0.5));
        b.fmul(r(14), r(12), fimm(0.5));
        b.fadd(r(15), r(13), Operand::Reg(r(14))); // window mean
        b.fmul(r(16), r(15), fimm(-1.0));
        b.fadd(r(17), r(7), Operand::Reg(r(16)));
        b.fmul(r(18), r(17), Operand::Reg(r(17)));
        b.fadd(r(19), r(8), Operand::Reg(r(16)));
        b.ffma(r(20), r(19), Operand::Reg(r(19)), Operand::Reg(r(18)));
        b.fadd(r(21), r(9), Operand::Reg(r(16)));
        b.ffma(r(22), r(21), Operand::Reg(r(21)), Operand::Reg(r(20)));
        b.fadd(r(23), r(10), Operand::Reg(r(16)));
        b.ffma(r(24), r(23), Operand::Reg(r(23)), Operand::Reg(r(22)));
        b.fadd(r(4), r(4), Operand::Reg(r(24)));
        b.iadd(r(5), r(5), -1);
        b.isetp(Cond::Gt, Pred::P0, r(5), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("frame");
        b.fsqrt(r(25), r(4));
        b.fsetp(Cond::Gt, Pred::P1, r(25), fimm(2.0)); // data-dependent
        b.guard(PredGuard::if_false(Pred::P1));
        b.bra("small");
        b.fmul(r(27), r(25), fimm(0.25));
        b.stg(r(3), r(27), E);
        b.bra("done");
        b.label("small");
        b.fadd(r(28), r(25), fimm(1.0));
        b.stg(r(3), r(28), E);
        b.label("done");
        b.stg(r(3), r(26), F);
        b.exit();
    })
}

/// Five-point thermal stencil with clamped boundaries, iterated with
/// barriers between time steps.
pub fn hotspot() -> Workload {
    build("HotSpot", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 256, Operand::Reg(r(0)));
        b.and(r(3), r(2), 15); // x
        b.shr(r(4), r(0), 4); // y (local)
        b.mov(r(5), 2); // time steps (uniform)
        b.shl(r(6), r(2), 2); // center address
        b.label("step");
        b.ldg(r(7), r(6), A); // center
        b.iadd(r(8), r(2), 16);
        b.and(r(8), r(8), 4095);
        b.shl(r(8), r(8), 2);
        b.ldg(r(9), r(8), A); // south
        b.isub(r(10), r(2), 16);
        b.and(r(10), r(10), 4095);
        b.shl(r(10), r(10), 2);
        b.ldg(r(11), r(10), A); // north
        b.iadd(r(12), r(2), 1);
        b.and(r(12), r(12), 4095);
        b.shl(r(12), r(12), 2);
        b.ldg(r(13), r(12), A); // east
        b.isub(r(14), r(2), 1);
        b.and(r(14), r(14), 4095);
        b.shl(r(14), r(14), 2);
        b.ldg(r(15), r(14), A); // west
        b.fadd(r(16), r(9), Operand::Reg(r(11)));
        b.fadd(r(17), r(13), Operand::Reg(r(15)));
        b.fadd(r(18), r(16), Operand::Reg(r(17)));
        b.ffma(r(19), r(7), fimm(-4.0), Operand::Reg(r(18)));
        b.ffma(r(20), r(19), fimm(0.1), Operand::Reg(r(7)));
        b.imin(r(21), r(3), Operand::Reg(r(4)));
        b.isetp(Cond::Eq, Pred::P0, r(21), Operand::Imm(0)); // boundary
        b.sel(r(21), Operand::Reg(r(7)), Operand::Reg(r(20)), Pred::P0);
        b.stg(r(6), r(21), B);
        b.bar();
        b.iadd(r(5), r(5), -1);
        b.isetp(Cond::Gt, Pred::P1, r(5), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P1));
        b.bra("step");
        b.exit();
    })
}

/// Blocked LU decomposition step: one warp, a uniform pivot loop with
/// a lane-divergent update region.
pub fn lud() -> Workload {
    build("LUD", |b| {
        b.s2r(r(0), Special::LaneId);
        b.s2r(r(1), Special::CtaIdX);
        b.mov(r(2), 8); // pivot loop (uniform)
        b.shl(r(3), r(0), 2);
        b.imad(r(4), r(1), 32, Operand::Reg(r(0)));
        b.shl(r(4), r(4), 2);
        b.ldg(r(5), r(4), A);
        b.sts(r(3), r(5), 0);
        b.bar();
        b.label("outer");
        b.mov(r(6), 8);
        b.isub(r(6), r(6), Operand::Reg(r(2))); // pivot index i
        b.isetp(Cond::Gt, Pred::P0, r(0), Operand::Reg(r(6)));
        b.guard(PredGuard::if_false(Pred::P0));
        b.bra("skip");
        b.shl(r(7), r(6), 2);
        b.lds(r(8), r(7), 0); // pivot element
        b.frcp(r(9), r(8));
        b.lds(r(10), r(3), 0);
        b.fmul(r(11), r(10), Operand::Reg(r(9))); // l = a / pivot
        b.imad(r(12), r(6), 5, Operand::Reg(r(0)));
        b.and(r(12), r(12), 31);
        b.shl(r(12), r(12), 2);
        b.lds(r(13), r(12), 0);
        b.ffma(r(14), r(11), Operand::Reg(r(13)), Operand::Reg(r(10)));
        b.sts(r(3), r(14), 0);
        b.imad(r(15), r(6), 32, Operand::Reg(r(0)));
        b.imad(r(15), r(1), 256, Operand::Reg(r(15))); // per-CTA L block
        b.shl(r(15), r(15), 2);
        b.stg(r(15), r(11), B);
        b.label("skip");
        b.iadd(r(2), r(2), -1);
        b.isetp(Cond::Gt, Pred::P1, r(2), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P1));
        b.bra("outer");
        b.lds(r(16), r(3), 0);
        b.imad(r(17), r(1), 32, Operand::Reg(r(0)));
        b.shl(r(17), r(17), 2);
        b.fadd(r(18), r(16), fimm(0.0));
        b.stg(r(17), r(18), C);
        b.exit();
    })
}

/// One elimination step of Gaussian elimination: slim kernel with a
/// data-dependent guarded multiply.
pub fn gaussian() -> Workload {
    build("Gaussian", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 512, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.ldg(r(4), r(3), A); // element
        b.ldg(r(5), r(3), B); // pivot row element
        b.fsetp(Cond::Gt, Pred::P0, r(4), fimm(0.0)); // data-dependent
        b.guard(PredGuard::if_true(Pred::P0));
        b.fmul(r(6), r(5), fimm(0.5));
        b.guard(PredGuard::if_false(Pred::P0));
        b.mov(r(6), fimm(0.0));
        b.fadd(r(7), r(4), Operand::Reg(r(6)));
        b.stg(r(3), r(7), C);
        b.exit();
    })
}

/// Monte Carlo LIBOR path simulation: a long uniform loop of LCG
/// updates and SFU math, registers for running statistics.
pub fn lib() -> Workload {
    build("LIB", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 64, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.ldg(r(4), r(3), A); // seed
        b.mov(r(5), fimm(1.0)); // path value
        b.mov(r(6), 16); // steps (uniform)
        b.mov(r(12), fimm(0.0)); // sum
        b.mov(r(13), fimm(0.0)); // sum of squares
        b.label("mc");
        b.imul(r(4), r(4), 1103515245); // LCG multiply...
        b.iadd(r(4), r(4), 12345); // ...and increment
        b.shr(r(7), r(4), 9);
        b.or(r(8), r(7), Operand::Imm(0x3f80_0000)); // float in [1,2)
        b.fadd(r(9), r(8), fimm(-1.5));
        b.fmul(r(10), r(9), fimm(0.2));
        b.fexp(r(11), r(10));
        b.fmul(r(5), r(5), Operand::Reg(r(11)));
        b.fadd(r(12), r(12), Operand::Reg(r(5)));
        b.ffma(r(13), r(5), Operand::Reg(r(5)), Operand::Reg(r(13)));
        b.iadd(r(6), r(6), -1);
        b.isetp(Cond::Gt, Pred::P0, r(6), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("mc");
        b.fadd(r(14), r(5), fimm(-1.0));
        b.fmax(r(15), r(14), fimm(0.0)); // payoff
        b.fmul(r(16), r(15), fimm(0.9));
        b.fsqrt(r(17), r(13));
        b.frcp(r(18), r(17));
        b.fmul(r(19), r(12), Operand::Reg(r(18)));
        b.fadd(r(20), r(16), Operand::Reg(r(19)));
        b.fmul(r(21), r(20), fimm(0.5));
        b.stg(r(3), r(21), C);
        b.exit();
    })
}

/// 3D Laplace solver slice: shared-memory plane plus global
/// out-of-plane neighbours.
pub fn lps() -> Workload {
    build("LPS", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 128, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.ldg(r(4), r(3), A);
        b.shl(r(5), r(0), 2);
        b.sts(r(5), r(4), 0);
        b.bar();
        b.iadd(r(6), r(0), 1);
        b.and(r(6), r(6), 127);
        b.shl(r(6), r(6), 2);
        b.lds(r(7), r(6), 0);
        b.isub(r(8), r(0), 1);
        b.and(r(8), r(8), 127);
        b.shl(r(8), r(8), 2);
        b.lds(r(9), r(8), 0);
        b.iadd(r(10), r(2), 128);
        b.and(r(10), r(10), 8191);
        b.shl(r(10), r(10), 2);
        b.ldg(r(11), r(10), A);
        b.fadd(r(12), r(7), Operand::Reg(r(9)));
        b.fadd(r(13), r(12), Operand::Reg(r(11)));
        b.ffma(r(14), r(4), fimm(-3.0), Operand::Reg(r(13)));
        b.ffma(r(15), r(14), fimm(0.15), Operand::Reg(r(4)));
        b.fmax(r(16), r(15), fimm(0.0));
        b.stg(r(3), r(16), B);
        b.exit();
    })
}

/// k-nearest-neighbour distance: a short uniform coordinate loop plus
/// SFU epilogue.
pub fn nn() -> Workload {
    build("NN", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 169, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.mov(r(4), fimm(0.0)); // squared distance
        b.mov(r(5), 4); // coordinate loop (uniform)
        b.label("coord");
        b.imad(r(6), r(5), 1024, Operand::Reg(r(2)));
        b.shl(r(6), r(6), 2);
        b.ldg(r(7), r(6), A); // record coordinate
        b.ldg(r(8), r(6), B); // query coordinate
        b.fmul(r(9), r(8), fimm(-1.0));
        b.fadd(r(10), r(7), Operand::Reg(r(9)));
        b.ffma(r(4), r(10), Operand::Reg(r(10)), Operand::Reg(r(4)));
        b.iadd(r(5), r(5), -1);
        b.isetp(Cond::Gt, Pred::P0, r(5), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("coord");
        b.fsqrt(r(11), r(4));
        b.fmul(r(12), r(11), fimm(0.5));
        b.fadd(r(13), r(12), fimm(1.0));
        b.stg(r(3), r(13), C);
        b.exit();
    })
}

/// Suffix-tree walk: per-lane pointer chasing with data-dependent
/// trip counts and uncoalesced loads — the memory-contention-heavy
/// benchmark where GPU-shrink's throttling helped in the paper.
pub fn mum() -> Workload {
    build("MUM", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 256, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.ldg(r(4), r(3), A); // start node
        b.and(r(4), r(4), 4095);
        b.ldg(r(5), r(3), B); // query length
        b.and(r(5), r(5), 15);
        b.iadd(r(5), r(5), 1);
        b.mov(r(6), 0); // match length
        b.label("walk");
        b.shl(r(7), r(4), 2);
        b.ldg(r(8), r(7), C); // node record (uncoalesced)
        b.and(r(9), r(8), 4095); // next node
        b.shr(r(10), r(8), 12);
        b.and(r(10), r(10), 1); // match bit
        b.iadd(r(6), r(6), Operand::Reg(r(10)));
        b.mov(r(4), Operand::Reg(r(9)));
        b.iadd(r(5), r(5), -1);
        b.isetp(Cond::Gt, Pred::P0, r(5), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("walk");
        b.shl(r(11), r(6), 1);
        b.iadd(r(12), r(11), Operand::Reg(r(6)));
        b.imul(r(13), r(12), 3);
        b.and(r(14), r(13), 255);
        b.iadd(r(15), r(14), 7);
        b.xor(r(16), r(15), Operand::Reg(r(2)));
        b.and(r(16), r(16), 1023); // value == address tag: collisions agree
        b.shl(r(17), r(16), 2);
        b.imax(r(18), r(15), Operand::Reg(r(6)));
        b.stg(r(3), r(18), D);
        b.stg(r(17), r(16), E);
        b.exit();
    })
}

/// Dot product: per-thread accumulation loop then a shared-memory
/// tree reduction.
pub fn scalarprod() -> Workload {
    build("ScalarProd", |b| {
        b.s2r(r(0), Special::TidX);
        b.s2r(r(1), Special::CtaIdX);
        b.imad(r(2), r(1), 256, Operand::Reg(r(0)));
        b.shl(r(3), r(2), 2);
        b.mov(r(4), fimm(0.0));
        b.mov(r(5), 8); // element loop (uniform)
        b.label("acc");
        b.imad(r(6), r(5), 2048, Operand::Reg(r(2)));
        b.shl(r(6), r(6), 2);
        b.ldg(r(7), r(6), A);
        b.ldg(r(8), r(6), B);
        b.ffma(r(4), r(7), Operand::Reg(r(8)), Operand::Reg(r(4)));
        b.iadd(r(5), r(5), -1);
        b.isetp(Cond::Gt, Pred::P0, r(5), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("acc");
        b.shl(r(9), r(0), 2);
        b.sts(r(9), r(4), 0);
        b.bar();
        b.mov(r(10), 128); // stride
        b.label("red");
        b.isetp(Cond::Lt, Pred::P1, r(0), Operand::Reg(r(10)));
        b.guard(PredGuard::if_false(Pred::P1));
        b.bra("skip");
        b.iadd(r(11), r(0), Operand::Reg(r(10)));
        b.shl(r(11), r(11), 2);
        b.lds(r(12), r(11), 0);
        b.lds(r(13), r(9), 0);
        b.fadd(r(13), r(13), Operand::Reg(r(12)));
        b.sts(r(9), r(13), 0);
        b.label("skip");
        b.bar();
        b.shr(r(10), r(10), 1);
        b.isetp(Cond::Gt, Pred::P1, r(10), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P1));
        b.bra("red");
        b.isetp(Cond::Ne, Pred::P0, r(0), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("end");
        b.lds(r(14), r(9), 0);
        b.shl(r(15), r(1), 2);
        b.fadd(r(16), r(14), fimm(0.0));
        b.stg(r(15), r(16), C);
        b.label("end");
        b.exit();
    })
}

/// All sixteen benchmarks, in Table 1 order.
pub fn all() -> Vec<Workload> {
    vec![
        matrixmul(),
        blackscholes(),
        dct8x8(),
        reduction(),
        vectoradd(),
        backprop(),
        bfs(),
        heartwall(),
        hotspot(),
        lud(),
        gaussian(),
        lib(),
        lps(),
        nn(),
        mum(),
        scalarprod(),
    ]
}

/// Looks up one benchmark by its Table 1 name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_counts_match_table1() {
        for w in all() {
            assert_eq!(w.kernel.num_regs(), w.paper.regs_per_kernel, "{}", w.name());
        }
    }

    #[test]
    fn geometry_matches_table1() {
        for w in all() {
            assert_eq!(w.kernel.launch().threads_per_cta(), w.paper.threads_per_cta);
            assert_eq!(w.kernel.launch().max_conc_ctas_per_sm(), w.paper.conc_ctas);
            assert!(w.kernel.launch().grid_ctas() <= w.paper.ctas);
        }
    }

    #[test]
    fn all_sixteen_present_and_unique() {
        use crate::table1::TABLE1;
        let ws = all();
        assert_eq!(ws.len(), TABLE1.len());
        for g in TABLE1 {
            assert!(by_name(g.name).is_some(), "{} missing", g.name);
        }
    }

    #[test]
    fn kernels_compile() {
        for w in all() {
            let c = rfv_compiler::compile(&w.kernel, &rfv_compiler::CompileOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert!(c.stats().machine_instrs > 0);
        }
    }

    #[test]
    fn vectoradd_is_the_slimmest() {
        let v = vectoradd();
        assert_eq!(v.kernel.num_regs(), 4);
        let h = heartwall();
        assert_eq!(h.kernel.num_regs(), 29);
    }
}
