//! Table 1: workload geometry from the paper.

/// Launch geometry of one paper benchmark (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PaperGeometry {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Grid size (number of CTAs).
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Registers per kernel (the count outside the parentheses in
    /// Table 1, which includes address and condition registers).
    pub regs_per_kernel: usize,
    /// Concurrent CTAs per SM.
    pub conc_ctas: u32,
}

/// The sixteen benchmarks of Table 1.
pub const TABLE1: [PaperGeometry; 16] = [
    PaperGeometry {
        name: "MatrixMul",
        ctas: 64,
        threads_per_cta: 256,
        regs_per_kernel: 14,
        conc_ctas: 6,
    },
    PaperGeometry {
        name: "BlackScholes",
        ctas: 480,
        threads_per_cta: 128,
        regs_per_kernel: 18,
        conc_ctas: 8,
    },
    PaperGeometry {
        name: "DCT8x8",
        ctas: 4096,
        threads_per_cta: 64,
        regs_per_kernel: 22,
        conc_ctas: 8,
    },
    PaperGeometry {
        name: "Reduction",
        ctas: 64,
        threads_per_cta: 256,
        regs_per_kernel: 14,
        conc_ctas: 6,
    },
    PaperGeometry {
        name: "VectorAdd",
        ctas: 196,
        threads_per_cta: 256,
        regs_per_kernel: 4,
        conc_ctas: 6,
    },
    PaperGeometry {
        name: "BackProp",
        ctas: 4096,
        threads_per_cta: 256,
        regs_per_kernel: 17,
        conc_ctas: 6,
    },
    PaperGeometry {
        name: "BFS",
        ctas: 1954,
        threads_per_cta: 512,
        regs_per_kernel: 9,
        conc_ctas: 3,
    },
    PaperGeometry {
        name: "Heartwall",
        ctas: 51,
        threads_per_cta: 512,
        regs_per_kernel: 29,
        conc_ctas: 2,
    },
    PaperGeometry {
        name: "HotSpot",
        ctas: 1849,
        threads_per_cta: 256,
        regs_per_kernel: 22,
        conc_ctas: 3,
    },
    PaperGeometry {
        name: "LUD",
        ctas: 15,
        threads_per_cta: 32,
        regs_per_kernel: 19,
        conc_ctas: 6,
    },
    PaperGeometry {
        name: "Gaussian",
        ctas: 2,
        threads_per_cta: 512,
        regs_per_kernel: 8,
        conc_ctas: 3,
    },
    PaperGeometry {
        name: "LIB",
        ctas: 64,
        threads_per_cta: 64,
        regs_per_kernel: 22,
        conc_ctas: 8,
    },
    PaperGeometry {
        name: "LPS",
        ctas: 100,
        threads_per_cta: 128,
        regs_per_kernel: 17,
        conc_ctas: 8,
    },
    PaperGeometry {
        name: "NN",
        ctas: 168,
        threads_per_cta: 169,
        regs_per_kernel: 14,
        conc_ctas: 8,
    },
    PaperGeometry {
        name: "MUM",
        ctas: 196,
        threads_per_cta: 256,
        regs_per_kernel: 19,
        conc_ctas: 6,
    },
    PaperGeometry {
        name: "ScalarProd",
        ctas: 128,
        threads_per_cta: 256,
        regs_per_kernel: 17,
        conc_ctas: 6,
    },
];

/// Looks up a benchmark's paper geometry by name.
pub fn paper_geometry(name: &str) -> Option<PaperGeometry> {
    TABLE1.iter().find(|g| g.name == name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_benchmarks() {
        assert_eq!(TABLE1.len(), 16);
        assert_eq!(paper_geometry("MUM").unwrap().regs_per_kernel, 19);
        assert_eq!(paper_geometry("Heartwall").unwrap().conc_ctas, 2);
        assert!(paper_geometry("NoSuch").is_none());
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = TABLE1.iter().map(|g| g.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}
