//! Functional validators: reference models that check a benchmark's
//! *numerical outputs*, independent of any register-file
//! configuration.
//!
//! Each validator receives the kernel's launch geometry, the memory
//! initialization it was run with, and a `peek` closure over final
//! global memory. Validators exist for the benchmarks whose semantics
//! are simple enough to mirror exactly; the rest are covered by the
//! cross-configuration identity tests.

use crate::suite::buffers;
use crate::Workload;

/// Reads final global memory (word address → value).
pub type Peek<'a> = &'a dyn Fn(u64) -> u32;

/// A reference-model check for one benchmark's outputs.
pub type Validator = fn(&Workload, &[(u64, u32)], Peek<'_>) -> Result<(), String>;

fn f(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// Deterministic float inputs for buffer `base`: `index → value`.
fn input_f32(index: u64) -> f32 {
    // small, exactly-representable values: sums stay exact in f32
    ((index % 64) as f32) * 0.25 + 1.0
}

/// Builds the standard float initialization: buffers A..D hold
/// `input(i)`, `2·input(i)`, `3·input(i)`, `4·input(i)` over `words`
/// words each (benchmarks that write C/D overwrite them; none reads a
/// buffer after writing it).
pub fn standard_init(words: u64) -> Vec<(u64, u32)> {
    let mut init = Vec::with_capacity(4 * words as usize);
    for i in 0..words {
        init.push((buffers::A as u64 + i * 4, input_f32(i).to_bits()));
        init.push((buffers::B as u64 + i * 4, (input_f32(i) * 2.0).to_bits()));
        init.push((buffers::C as u64 + i * 4, (input_f32(i) * 3.0).to_bits()));
        init.push((buffers::D as u64 + i * 4, (input_f32(i) * 4.0).to_bits()));
    }
    init
}

/// `VectorAdd`: `C[i] = A[i] + B[i]` over the whole grid.
pub fn validate_vectoradd(
    w: &Workload,
    _init: &[(u64, u32)],
    peek: Peek<'_>,
) -> Result<(), String> {
    let threads = w.kernel.launch().total_threads();
    for i in 0..threads {
        let expected = input_f32(i) + input_f32(i) * 2.0;
        let got = f(peek(buffers::C as u64 + i * 4));
        if (got - expected).abs() > 1e-6 {
            return Err(format!("VectorAdd c[{i}] = {got}, expected {expected}"));
        }
    }
    Ok(())
}

/// `Reduction`: `C[cta] = Σ A[cta*256 + t]` for `t` in `0..256`.
pub fn validate_reduction(
    w: &Workload,
    _init: &[(u64, u32)],
    peek: Peek<'_>,
) -> Result<(), String> {
    for cta in 0..u64::from(w.kernel.launch().grid_ctas()) {
        let expected: f32 = (0..256).map(|t| input_f32(cta * 256 + t)).sum();
        let got = f(peek(buffers::C as u64 + cta * 4));
        // the tree reduction reassociates, but our inputs are exact
        // quarter-integers, so the sum is still exact in f32
        if (got - expected).abs() > expected.abs() * 1e-5 {
            return Err(format!("Reduction c[{cta}] = {got}, expected {expected}"));
        }
    }
    Ok(())
}

/// `ScalarProd`: `C[cta] = Σ_t Σ_k A[idx] * B[idx]` with
/// `idx = k*2048 + cta*256 + t` for `k` in `1..=8`.
pub fn validate_scalarprod(
    w: &Workload,
    _init: &[(u64, u32)],
    peek: Peek<'_>,
) -> Result<(), String> {
    for cta in 0..u64::from(w.kernel.launch().grid_ctas()) {
        let mut expected = 0.0f64;
        for t in 0..256u64 {
            let gid = cta * 256 + t;
            for k in 1..=8u64 {
                let idx = k * 2048 + gid;
                expected += f64::from(input_f32(idx)) * f64::from(input_f32(idx) * 2.0);
            }
        }
        let got = f(peek(buffers::C as u64 + cta * 4));
        let expected = expected as f32;
        if (got - expected).abs() > expected.abs() * 1e-3 {
            return Err(format!("ScalarProd c[{cta}] = {got}, expected {expected}"));
        }
    }
    Ok(())
}

/// `NN`: `C[gid] = sqrt(Σ_k (A[idx] - B[idx])²) * 0.5 + 1.0` with
/// `idx = k*1024 + gid` for `k` in `1..=4`.
pub fn validate_nn(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    let launch = w.kernel.launch();
    for cta in 0..u64::from(launch.grid_ctas()) {
        for t in 0..u64::from(launch.threads_per_cta()) {
            let gid = cta * u64::from(launch.threads_per_cta()) + t;
            let mut acc = 0.0f32;
            for k in 1..=4u64 {
                let idx = k * 1024 + gid;
                let d = input_f32(idx) - input_f32(idx) * 2.0;
                acc = d.mul_add(d, acc);
            }
            let expected = acc.sqrt() * 0.5 + 1.0;
            let got = f(peek(buffers::C as u64 + gid * 4));
            if (got - expected).abs() > expected.abs() * 1e-5 {
                return Err(format!("NN c[{gid}] = {got}, expected {expected}"));
            }
        }
    }
    Ok(())
}

/// `MatrixMul`: an exact floating-point mirror of the tiled kernel —
/// per tile `t` (4 down to 1), threads stage `A[t*256 + gid]` and
/// `B[t*256 + gid]` into shared tiles, then each thread accumulates
/// `acc = a.mul_add(b, acc)` over `k` (16 down to 1) with
/// `a = tileA[row*16 + k-1]`, `b = tileB[(k-1)*16 + col]`.
pub fn validate_matrixmul(
    w: &Workload,
    _init: &[(u64, u32)],
    peek: Peek<'_>,
) -> Result<(), String> {
    for cta in 0..u64::from(w.kernel.launch().grid_ctas()) {
        // stage the four tiles exactly as the kernel's STS does
        let tile_a = |tile: u64, t: u64| input_f32(tile * 256 + cta * 256 + t);
        let tile_b = |tile: u64, t: u64| input_f32(tile * 256 + cta * 256 + t) * 2.0;
        for tid in 0..256u64 {
            let (col, row) = (tid & 15, tid >> 4);
            let mut acc = 0.0f32;
            for tile in (1..=4u64).rev() {
                for k in (1..=16u64).rev() {
                    let a = tile_a(tile, row * 16 + (k - 1));
                    let b = tile_b(tile, (k - 1) * 16 + col);
                    acc = a.mul_add(b, acc);
                }
            }
            let gid = cta * 256 + tid;
            let got = f(peek(buffers::C as u64 + gid * 4));
            if got != acc {
                return Err(format!("MatrixMul c[{gid}] = {got}, expected {acc}"));
            }
        }
    }
    Ok(())
}

/// `HotSpot`: five-point stencil with wrap-masked neighbours and a
/// `min(x, y) == 0` boundary that keeps the old value.
pub fn validate_hotspot(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    let launch = w.kernel.launch();
    let a = |idx: u64| input_f32(idx & 4095);
    for cta in 0..u64::from(launch.grid_ctas()) {
        for tid in 0..256u64 {
            let gid = cta * 256 + tid;
            let x = gid & 15;
            let y = tid >> 4;
            let center = a(gid & 4095);
            let south = a(gid.wrapping_add(16) & 4095);
            let north = a(gid.wrapping_sub(16) & 4095);
            let east = a(gid.wrapping_add(1) & 4095);
            let west = a(gid.wrapping_sub(1) & 4095);
            let lap = center.mul_add(-4.0, (south + north) + (east + west));
            let fresh = lap.mul_add(0.1, center);
            let expected = if x.min(y) == 0 { center } else { fresh };
            let got = f(peek(buffers::B as u64 + gid * 4));
            if got != expected {
                return Err(format!("HotSpot b[{gid}] = {got}, expected {expected}"));
            }
        }
    }
    Ok(())
}

/// `BlackScholes`: the exact SFU chain — `d1 = (log2(S/X) + 0.06T) /
/// sqrt(T)`, `d2 = d1 − 0.3`, `call = S·2^d1 + X·2^d2` (and the same
/// value stored as the "put" proxy).
pub fn validate_blackscholes(
    w: &Workload,
    _init: &[(u64, u32)],
    peek: Peek<'_>,
) -> Result<(), String> {
    for gid in 0..w.kernel.launch().total_threads() {
        let s = input_f32(gid);
        let x = input_f32(gid) * 2.0;
        let t = input_f32(gid) * 3.0;
        let sqrt_t = t.sqrt();
        let r9 = s * (1.0 / x);
        let r12 = r9.log2() + t * 0.06;
        let d1 = r12 * (1.0 / sqrt_t);
        let d2 = d1 + (-0.3);
        let c1 = s * d1.exp2();
        let c2 = x * d2.exp2();
        let call = c1 + c2;
        let put = c2 + c1;
        let got_call = f(peek(buffers::D as u64 + gid * 4));
        let got_put = f(peek(buffers::E as u64 + gid * 4));
        if got_call != call || got_put != put {
            return Err(format!(
                "BlackScholes[{gid}] = ({got_call}, {got_put}), expected ({call}, {put})"
            ));
        }
    }
    Ok(())
}

/// `BackProp`: forward weight accumulation, sigmoid proxy
/// `1 / (2^acc + 1)`, a same-slot shared-memory exchange, and two
/// stores.
pub fn validate_backprop(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    for gid in 0..w.kernel.launch().total_threads() {
        let input = input_f32(gid);
        let mut acc = 0.0f32;
        for k in (1..=16u64).rev() {
            let weight = input_f32(k * 256 + gid) * 2.0;
            acc = weight.mul_add(input, acc);
        }
        let sig = 1.0 / (acc.exp2() + 1.0);
        let r15 = sig * 0.3 + sig; // own shared slot read back
        let r16 = r15 * 2.0;
        let got_c = f(peek(buffers::C as u64 + gid * 4));
        let got_d = f(peek(buffers::D as u64 + gid * 4));
        if got_c != r15 || got_d != r16 {
            return Err(format!(
                "BackProp[{gid}] = ({got_c}, {got_d}), expected ({r15}, {r16})"
            ));
        }
    }
    Ok(())
}

/// `Gaussian`: `C[gid] = A[gid] + B[gid]·0.5` (the guard `A > 0`
/// always holds for the standard inputs, exercising the guarded
/// multiply path).
pub fn validate_gaussian(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    for gid in 0..w.kernel.launch().total_threads() {
        let a = input_f32(gid);
        let b = input_f32(gid) * 2.0;
        let expected = a + b * 0.5;
        let got = f(peek(buffers::C as u64 + gid * 4));
        if got != expected {
            return Err(format!("Gaussian c[{gid}] = {got}, expected {expected}"));
        }
    }
    Ok(())
}

/// `LPS`: in-plane shared-memory neighbours plus one out-of-plane
/// global neighbour, `max(lap·0.15 + c, 0)`.
pub fn validate_lps(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    let launch = w.kernel.launch();
    for cta in 0..u64::from(launch.grid_ctas()) {
        for tid in 0..128u64 {
            let gid = cta * 128 + tid;
            let center = input_f32(gid);
            let right = input_f32(cta * 128 + ((tid + 1) & 127));
            let left = input_f32(cta * 128 + ((tid.wrapping_sub(1)) & 127));
            let z = input_f32((gid + 128) & 8191);
            let lap = center.mul_add(-3.0, (right + left) + z);
            let expected = lap.mul_add(0.15, center).max(0.0);
            let got = f(peek(buffers::B as u64 + gid * 4));
            if got != expected {
                return Err(format!("LPS b[{gid}] = {got}, expected {expected}"));
            }
        }
    }
    Ok(())
}

/// `LIB`: the Monte Carlo LCG walk, path product, running sum and
/// sum-of-squares, and the payoff epilogue — integer and float ops
/// mirrored bit-exactly.
pub fn validate_lib(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    for gid in 0..w.kernel.launch().total_threads() {
        let mut seed = input_f32(gid).to_bits();
        let mut path = 1.0f32;
        let mut sum = 0.0f32;
        let mut sumsq = 0.0f32;
        for _ in 0..16 {
            seed = seed.wrapping_mul(1_103_515_245).wrapping_add(12345);
            let r8 = (seed >> 9) | 0x3f80_0000;
            let step = ((f(r8) + (-1.5)) * 0.2).exp2();
            path *= step;
            sum += path;
            sumsq = path.mul_add(path, sumsq);
        }
        let payoff = (path + (-1.0)).max(0.0) * 0.9;
        let expected = (payoff + sum * (1.0 / sumsq.sqrt())) * 0.5;
        let got = f(peek(buffers::C as u64 + gid * 4));
        if got != expected {
            return Err(format!("LIB c[{gid}] = {got}, expected {expected}"));
        }
    }
    Ok(())
}

/// `DCT8x8`: the two shared-memory passes — per-thread row
/// accumulation over the staged tile, then a column pass over every
/// thread's row result.
pub fn validate_dct8x8(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    for cta in 0..u64::from(w.kernel.launch().grid_ctas()) {
        let tile = |t: u64| input_f32(cta * 64 + t);
        // row pass for every thread (the column pass reads them all)
        let mut row_acc = [0.0f32; 64];
        for (tid, acc_slot) in row_acc.iter_mut().enumerate() {
            let tid = tid as u64;
            let (x, y) = (tid & 7, tid >> 3);
            let mut acc = 0.0f32;
            for k in (1..=8u64).rev() {
                let r11 = tile(y * 8 + (k - 1));
                let r13 = r11.mul_add(0.125, tile((k - 1) * 8 + x));
                acc += r13;
            }
            *acc_slot = acc;
        }
        for tid in 0..64u64 {
            let x = tid & 7;
            let mut acc2 = 0.0f32;
            for k in (1..=8u64).rev() {
                acc2 += row_acc[((k - 1) * 8 + x) as usize] * 0.25;
            }
            let expected = (acc2 * 0.5 + row_acc[tid as usize]).max(0.0);
            let gid = cta * 64 + tid;
            let got = f(peek(buffers::C as u64 + gid * 4));
            if got != expected {
                return Err(format!("DCT8x8 c[{gid}] = {got}, expected {expected}"));
            }
        }
    }
    Ok(())
}

/// `Heartwall`: the windowed SAD pipeline over four frames, the
/// square root, and the data-dependent threshold store.
pub fn validate_heartwall(
    w: &Workload,
    _init: &[(u64, u32)],
    peek: Peek<'_>,
) -> Result<(), String> {
    for gid in 0..w.kernel.launch().total_threads() {
        let mut acc = 0.0f32;
        for k in (1..=4u64).rev() {
            let idx = k * 512 + gid;
            let (a, b, c, d) = (
                input_f32(idx),
                input_f32(idx) * 2.0,
                input_f32(idx) * 3.0,
                input_f32(idx) * 4.0,
            );
            let mean = (a + b) * 0.5 + (c + d) * 0.5;
            #[allow(clippy::neg_multiply)] // mirrors the kernel's FMUL by -1.0
            let neg = mean * -1.0;
            let mut sad = (a + neg) * (a + neg);
            sad = (b + neg).mul_add(b + neg, sad);
            sad = (c + neg).mul_add(c + neg, sad);
            sad = (d + neg).mul_add(d + neg, sad);
            acc += sad;
        }
        let r25 = acc.sqrt();
        let expected = if r25 > 2.0 { r25 * 0.25 } else { r25 + 1.0 };
        let got_e = f(peek(buffers::E as u64 + gid * 4));
        let got_f = peek(buffers::F as u64 + gid * 4);
        if got_e != expected || got_f != 7 {
            return Err(format!(
                "Heartwall[{gid}] = ({got_e}, {got_f}), expected ({expected}, 7)"
            ));
        }
    }
    Ok(())
}

/// `MUM`: the pointer-chasing suffix-tree walk over buffer C's bit
/// patterns, and the integer postprocessing chain.
pub fn validate_mum(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    for gid in 0..w.kernel.launch().total_threads() {
        let mut node = u64::from(input_f32(gid).to_bits() & 4095);
        let len = ((input_f32(gid) * 2.0).to_bits() & 15) + 1;
        let mut mlen = 0u32;
        for _ in 0..len {
            let rec = (input_f32(node) * 3.0).to_bits();
            mlen += (rec >> 12) & 1;
            node = u64::from(rec & 4095);
        }
        let r13 = (mlen << 1).wrapping_add(mlen).wrapping_mul(3);
        let r15 = (r13 & 255) + 7;
        let expected = (r15 as i32).max(mlen as i32) as u32;
        let got = peek(buffers::D as u64 + gid * 4);
        if got != expected {
            return Err(format!("MUM d[{gid}] = {got}, expected {expected}"));
        }
    }
    Ok(())
}

/// `BFS`: recompute the frontier expansion and check every touched
/// neighbour's level is 1 while untouched slots keep their
/// initialization.
pub fn validate_bfs(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    let mut touched = vec![false; 1024];
    for gid in 0..w.kernel.launch().total_threads() {
        if input_f32(gid).to_bits() & 1 == 0 {
            continue;
        }
        let count = ((input_f32(gid) * 2.0).to_bits() & 7) + 1;
        for k in (1..=u64::from(count)).rev() {
            let n = (input_f32(k * 4 + gid) * 3.0).to_bits() & 1023;
            touched[n as usize] = true;
        }
    }
    for (n, &hit) in touched.iter().enumerate() {
        let got = peek(buffers::D as u64 + n as u64 * 4);
        let expected = if hit {
            1
        } else {
            (input_f32(n as u64) * 4.0).to_bits()
        };
        if got != expected {
            return Err(format!("BFS level[{n}] = {got}, expected {expected}"));
        }
    }
    Ok(())
}

/// `LUD`: the serialized pivot loop — each iteration's active lanes
/// (`lane > pivot`) read a snapshot of shared memory, update their own
/// slot, and emit an `L` factor.
pub fn validate_lud(w: &Workload, _init: &[(u64, u32)], peek: Peek<'_>) -> Result<(), String> {
    for cta in 0..u64::from(w.kernel.launch().grid_ctas()) {
        let mut vals: Vec<f32> = (0..32).map(|l| input_f32(cta * 32 + l)).collect();
        let mut l_out = [[None::<f32>; 32]; 8];
        for p in 0..8usize {
            let snapshot = vals.clone();
            for lane in (p + 1)..32 {
                let pivot = snapshot[p];
                let ratio = snapshot[lane] * (1.0 / pivot);
                let other = snapshot[(p * 5 + lane) & 31];
                vals[lane] = ratio.mul_add(other, snapshot[lane]);
                l_out[p][lane] = Some(ratio);
            }
        }
        for lane in 0..32u64 {
            let expected = vals[lane as usize] + 0.0;
            let got = f(peek(buffers::C as u64 + (cta * 32 + lane) * 4));
            if got != expected {
                return Err(format!(
                    "LUD c[{}] = {got}, expected {expected}",
                    cta * 32 + lane
                ));
            }
        }
        for (p, row) in l_out.iter().enumerate() {
            for (lane, entry) in row.iter().enumerate() {
                let Some(expected) = entry else { continue };
                let addr = buffers::B as u64 + (cta * 256 + p as u64 * 32 + lane as u64) * 4;
                let got = f(peek(addr));
                if got != *expected {
                    return Err(format!("LUD l[{p}][{lane}] = {got}, expected {expected}"));
                }
            }
        }
    }
    Ok(())
}

/// The validators available, by benchmark name.
pub fn validator_for(name: &str) -> Option<Validator> {
    match name {
        "VectorAdd" => Some(validate_vectoradd),
        "Reduction" => Some(validate_reduction),
        "ScalarProd" => Some(validate_scalarprod),
        "NN" => Some(validate_nn),
        "MatrixMul" => Some(validate_matrixmul),
        "HotSpot" => Some(validate_hotspot),
        "BlackScholes" => Some(validate_blackscholes),
        "BackProp" => Some(validate_backprop),
        "Gaussian" => Some(validate_gaussian),
        "LPS" => Some(validate_lps),
        "LIB" => Some(validate_lib),
        "DCT8x8" => Some(validate_dct8x8),
        "Heartwall" => Some(validate_heartwall),
        "MUM" => Some(validate_mum),
        "BFS" => Some(validate_bfs),
        "LUD" => Some(validate_lud),
        _ => None,
    }
}

/// Words of input data the validators' [`standard_init`] must cover
/// for a workload (largest index any kernel touches, rounded up).
pub fn init_words_for(w: &Workload) -> u64 {
    let threads = w.kernel.launch().total_threads();
    // ScalarProd reaches k*2048 + gid (k ≤ 8); NN reaches k*1024 + gid;
    // HotSpot's wrap mask reaches word 4095; MatrixMul reaches
    // 4*256 + gid — all bounded by the ScalarProd term
    8 * 2048 + threads + 1024
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn validators_registered_for_known_benchmarks() {
        for w in crate::suite::all() {
            assert!(
                validator_for(w.name()).is_some(),
                "{} lacks a reference model",
                w.name()
            );
        }
        assert!(validator_for("NoSuch").is_none());
    }

    #[test]
    fn standard_init_is_deterministic_and_disjoint() {
        let init = standard_init(16);
        assert_eq!(init.len(), 64);
        let again = standard_init(16);
        assert_eq!(init, again);
        // A and B regions do not overlap
        let a_max = buffers::A as u64 + 15 * 4;
        assert!(a_max < buffers::B as u64);
    }

    #[test]
    fn init_words_cover_the_hungriest_kernel() {
        let sp = suite::scalarprod();
        let needed = 8 * 2048 + sp.kernel.launch().total_threads();
        assert!(init_words_for(&sp) >= needed);
    }
}
