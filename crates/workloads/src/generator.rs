//! A parameterized synthetic kernel generator, used by property tests
//! and ablation benches to explore register-virtualization behaviour
//! beyond the fixed Table 1 suite.

use rfv_isa::prelude::*;
use rfv_isa::{ArchReg as R, PredGuard, Special};

/// Shape of a generated kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SynthParams {
    /// Registers per thread (6..=63). The generator uses each id.
    pub regs: u8,
    /// Iterations of the main loop (0 = straight-line).
    pub loop_trips: u32,
    /// Whether the loop trip count is lane-dependent (divergent).
    pub divergent_loop: bool,
    /// Whether a divergent if/else diamond wraps part of the body.
    pub diamond: bool,
    /// Global loads per loop iteration (0..=3).
    pub mem_ops: u8,
    /// Grid CTAs.
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Concurrent CTAs per SM.
    pub conc_ctas: u32,
}

impl Default for SynthParams {
    fn default() -> SynthParams {
        SynthParams {
            regs: 16,
            loop_trips: 8,
            divergent_loop: false,
            diamond: false,
            mem_ops: 1,
            ctas: 8,
            threads_per_cta: 128,
            conc_ctas: 4,
        }
    }
}

/// Generates a kernel with the requested shape.
///
/// The kernel computes a register-chain hash over all `regs`
/// registers each loop iteration and stores one word per thread, so
/// every register id is defined and used.
///
/// # Panics
///
/// Panics when `regs` is outside `6..=63` or `mem_ops > 3`.
pub fn synth(p: SynthParams) -> Kernel {
    synth_repeated(p, 1)
}

/// [`synth`] with the straight-line register chain emitted
/// `chain_repeats` times per loop iteration (`synth` is
/// `synth_repeated(p, 1)`).
///
/// Repeating the chain grows the *program* without growing the
/// per-thread state: compile-time analysis (CFG, liveness, lifetime
/// intervals) scales with program length while a straight-line body
/// executes each instruction exactly once. High repeat counts
/// therefore produce compile-heavy, simulation-light kernels — the
/// shape that exercises `rfvd`'s per-kernel compile cache.
///
/// # Panics
///
/// Panics when `regs` is outside `6..=63`, `mem_ops > 3`, or
/// `chain_repeats` is zero.
pub fn synth_repeated(p: SynthParams, chain_repeats: u32) -> Kernel {
    assert!((6..=63).contains(&p.regs), "regs {} out of range", p.regs);
    assert!(p.mem_ops <= 3, "at most 3 loads per iteration");
    assert!(chain_repeats > 0, "chain_repeats must be positive");
    let rep_suffix = if chain_repeats > 1 {
        format!("x{chain_repeats}")
    } else {
        String::new()
    };
    let mut b = KernelBuilder::new(format!(
        "synth_r{}_t{}_{}{}m{}{}",
        p.regs,
        p.loop_trips,
        if p.divergent_loop { "d" } else { "u" },
        if p.diamond { "b" } else { "s" },
        p.mem_ops,
        rep_suffix
    ));
    let r = R::new;
    b.s2r(r(0), Special::TidX);
    b.s2r(r(1), Special::CtaIdX);
    b.imad(
        r(2),
        r(1),
        Operand::Imm(p.threads_per_cta as i32),
        Operand::Reg(r(0)),
    );
    b.shl(r(3), r(2), 2);
    // trip counter
    if p.loop_trips > 0 {
        if p.divergent_loop {
            b.and(r(p.regs - 1), r(0), 3);
            b.iadd(
                r(p.regs - 1),
                r(p.regs - 1),
                Operand::Imm(p.loop_trips as i32),
            );
        } else {
            b.mov(r(p.regs - 1), Operand::Imm(p.loop_trips as i32));
        }
    }
    // seed the chain registers
    for i in 4..p.regs.saturating_sub(1) {
        b.iadd(r(i), r(2), Operand::Imm(i as i32));
    }
    if p.loop_trips > 0 {
        b.label("loop");
    }
    // memory ops feed the head of the chain (never the loop counter
    // at r(regs-1): with few registers, multiple loads share r4)
    let chain_regs = usize::from(p.regs) - 5; // ids 4..regs-1 exclusive
    for m in 0..p.mem_ops {
        let dst = 4 + (usize::from(m) % chain_regs.max(1)) as u8;
        b.ldg(r(dst), r(3), 0x0010_0000 + 0x1000 * i32::from(m));
    }
    if p.diamond {
        b.isetp(Cond::Lt, Pred::P1, r(0), Operand::Imm(16));
        b.guard(PredGuard::if_false(Pred::P1));
        b.bra("else");
        b.iadd(r(4), r(4), Operand::Imm(3));
        b.bra("join");
        b.label("else");
        b.iadd(r(4), r(4), Operand::Imm(5));
        b.label("join");
    }
    // register chain: each register consumes its predecessor
    for _ in 0..chain_repeats {
        for i in 5..p.regs.saturating_sub(1) {
            b.imad(r(i), r(i - 1), Operand::Imm(3), Operand::Reg(r(i)));
        }
    }
    if p.loop_trips > 0 {
        b.iadd(r(p.regs - 1), r(p.regs - 1), Operand::Imm(-1));
        b.isetp(Cond::Gt, Pred::P0, r(p.regs - 1), Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("loop");
    }
    let last = p.regs - 2;
    b.stg(r(3), r(last), 0x0030_0000);
    b.exit();
    b.build(LaunchConfig::new(p.ctas, p.threads_per_cta, p.conc_ctas))
        .expect("generated kernels are structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_builds_and_uses_all_regs() {
        let k = synth(SynthParams::default());
        assert_eq!(k.num_regs(), 16);
        assert!(k.num_machine_instrs() > 10);
    }

    #[test]
    fn straight_line_when_no_trips() {
        let k = synth(SynthParams {
            loop_trips: 0,
            ..SynthParams::default()
        });
        // no backward branches
        let has_branch = k
            .items()
            .iter()
            .filter_map(|i| i.as_instr())
            .any(|i| i.opcode == rfv_isa::Opcode::Bra);
        assert!(!has_branch);
    }

    #[test]
    fn reg_count_spans_range() {
        for regs in [6u8, 8, 21, 63] {
            let k = synth(SynthParams {
                regs,
                ..SynthParams::default()
            });
            assert_eq!(k.num_regs(), regs as usize, "regs={regs}");
        }
    }

    #[test]
    fn generated_kernels_compile() {
        for divergent in [false, true] {
            for diamond in [false, true] {
                let k = synth(SynthParams {
                    divergent_loop: divergent,
                    diamond,
                    regs: 20,
                    ..SynthParams::default()
                });
                rfv_compiler::compile(&k, &rfv_compiler::CompileOptions::default())
                    .unwrap_or_else(|e| panic!("d={divergent} b={diamond}: {e}"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tiny_reg_count_rejected() {
        synth(SynthParams {
            regs: 5,
            ..SynthParams::default()
        });
    }

    #[test]
    fn repeated_chain_grows_program_not_registers() {
        let p = SynthParams {
            loop_trips: 0,
            ..SynthParams::default()
        };
        let base = synth_repeated(p, 1);
        let big = synth_repeated(p, 8);
        assert_eq!(base.items().len(), synth(p).items().len());
        assert_eq!(big.num_regs(), base.num_regs());
        // each extra repeat adds exactly one more register chain
        let chain = usize::from(p.regs) - 6; // ids 5..regs-1
        assert_eq!(
            big.num_machine_instrs(),
            base.num_machine_instrs() + 7 * chain
        );
        assert_ne!(base.name(), big.name());
        rfv_compiler::compile(&big, &rfv_compiler::CompileOptions::default())
            .expect("repeated kernels compile");
    }

    #[test]
    #[should_panic(expected = "chain_repeats")]
    fn zero_repeats_rejected() {
        synth_repeated(SynthParams::default(), 0);
    }
}
