//! # rfv-workloads — the paper's benchmark suite, synthesized
//!
//! Sixteen kernels reproducing Table 1 of *GPU Register File
//! Virtualization* (MICRO-48, 2015) — launch geometry, exact register
//! counts, and control-flow class per benchmark — plus a
//! parameterized [`generator`] for property tests and ablations.
//!
//! ```
//! use rfv_workloads::suite;
//!
//! let mm = suite::matrixmul();
//! assert_eq!(mm.kernel.num_regs(), 14); // Table 1
//! assert_eq!(suite::all().len(), 16);
//! ```

pub mod generator;
pub mod suite;
pub mod table1;
pub mod validate;

pub use generator::{synth, synth_repeated, SynthParams};
pub use suite::{all, by_name, Workload};
pub use table1::{paper_geometry, PaperGeometry, TABLE1};
pub use validate::{standard_init, validator_for};
