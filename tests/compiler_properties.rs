//! Property-based tests of the compiler's release-point analysis:
//! structural soundness invariants over randomly-shaped kernels.

use proptest::prelude::*;

use rfv_compiler::{
    compile, Cfg, CompileOptions, DivergenceRegions, Liveness, PostDominators, Uniformity,
};
use rfv_isa::kernel::ProgItem;
use rfv_workloads::{synth, SynthParams};

fn arb_params() -> impl Strategy<Value = SynthParams> {
    (
        6u8..=48,
        0u32..10,
        any::<bool>(),
        any::<bool>(),
        0u8..=3,
        1u32..=4,
        prop_oneof![Just(32u32), Just(64), Just(160), Just(256)],
        1u32..=4,
    )
        .prop_map(
            |(regs, loop_trips, divergent_loop, diamond, mem_ops, ctas, threads, conc)| {
                SynthParams {
                    regs,
                    loop_trips,
                    divergent_loop,
                    diamond,
                    mem_ops,
                    ctas,
                    threads_per_cta: threads,
                    conc_ctas: conc,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Metadata insertion preserves the machine-instruction sequence
    /// exactly (opcodes and operands, in order).
    #[test]
    fn insertion_preserves_machine_code(p in arb_params()) {
        let kernel = synth(p);
        let ck = compile(&kernel, &CompileOptions::default()).unwrap();
        let before: Vec<_> = kernel
            .items()
            .iter()
            .filter_map(|i| i.as_instr())
            .map(|i| (i.opcode, i.dst, i.srcs.clone(), i.guard))
            .collect();
        let after: Vec<_> = ck
            .kernel()
            .items()
            .iter()
            .filter_map(|i| i.as_instr())
            .map(|i| (i.opcode, i.dst, i.srcs.clone(), i.guard))
            .collect();
        prop_assert_eq!(before, after);
    }

    /// A release flag always names a register operand of its
    /// instruction, the register is renamed (never exempt), and it is
    /// dead at thread level immediately after the instruction.
    #[test]
    fn pir_flags_are_sound(p in arb_params()) {
        let kernel = synth(p);
        let ck = compile(&kernel, &CompileOptions::default()).unwrap();
        // recompute liveness on the original kernel for cross-checking
        let cfg = Cfg::build(&kernel).unwrap();
        let lv = Liveness::compute(&cfg);
        // map original pcs in order onto rewritten machine pcs
        let rewritten_pcs: Vec<usize> = ck
            .kernel()
            .items()
            .iter()
            .enumerate()
            .filter(|(_, it)| !it.is_meta())
            .map(|(pc, _)| pc)
            .collect();
        for (orig_pc, &new_pc) in rewritten_pcs.iter().enumerate() {
            let flags = ck.flags_at(new_pc);
            if !flags.any() {
                continue;
            }
            let instr = ck.kernel().items()[new_pc].as_instr().unwrap();
            for slot in 0..3 {
                if !flags.releases(slot) {
                    continue;
                }
                let reg = instr
                    .srcs
                    .get(slot)
                    .and_then(|o| o.reg())
                    .expect("flag on a non-register operand slot");
                prop_assert!(ck.is_renamed(reg), "flagged exempt register {reg}");
                prop_assert!(
                    !lv.live_out_at(orig_pc).contains(reg),
                    "released live register {reg} at pc {orig_pc}"
                );
            }
        }
    }

    /// `pir` releases never appear inside divergence regions.
    #[test]
    fn no_releases_in_divergent_blocks(p in arb_params()) {
        let kernel = synth(p);
        let ck = compile(&kernel, &CompileOptions::default()).unwrap();
        let cfg = Cfg::build(&kernel).unwrap();
        let pdom = PostDominators::compute(&cfg);
        let uni = Uniformity::compute(cfg.instrs());
        let dr = DivergenceRegions::compute(&cfg, &pdom, &uni);
        let machine_pcs: Vec<usize> = ck
            .kernel()
            .items()
            .iter()
            .enumerate()
            .filter(|(_, it)| !it.is_meta())
            .map(|(pc, _)| pc)
            .collect();
        for (orig_pc, &new_pc) in machine_pcs.iter().enumerate() {
            if ck.flags_at(new_pc).any() {
                let block = cfg.block_of(orig_pc);
                prop_assert!(
                    dr.is_convergent(block),
                    "pir release inside divergent block {block} (pc {orig_pc})"
                );
            }
        }
    }

    /// `pbr` registers are dead at their reconvergence block and are
    /// never exempt.
    #[test]
    fn pbr_registers_are_dead_at_reconvergence(p in arb_params()) {
        let kernel = synth(p);
        let ck = compile(&kernel, &CompileOptions::default()).unwrap();
        let cfg = Cfg::build(&kernel).unwrap();
        let lv = Liveness::compute(&cfg);
        // rebuild the original-block <-> rewritten-head mapping by
        // walking rewritten items and counting machine instructions
        let mut machine_seen = 0usize;
        for item in ck.kernel().items() {
            match item {
                ProgItem::Pbr(pbr) => {
                    // the block whose head this pbr sits at starts at
                    // original pc `machine_seen`
                    let block = cfg.block_of(machine_seen);
                    for &reg in pbr.regs() {
                        prop_assert!(ck.is_renamed(reg));
                        prop_assert!(
                            !lv.live_in(block).contains(reg),
                            "pbr releases live-in register {reg} at {block}"
                        );
                    }
                }
                ProgItem::Instr(_) => machine_seen += 1,
                ProgItem::Pir(_) => {}
            }
        }
    }

    /// Renamed and exempt sets partition the used registers, and the
    /// constrained table respects the budget.
    #[test]
    fn candidate_selection_is_a_partition(p in arb_params()) {
        let kernel = synth(p);
        let ck = compile(&kernel, &CompileOptions::default()).unwrap();
        for reg in kernel.regs_used() {
            prop_assert!(
                ck.is_renamed(reg) ^ ck.is_exempt(reg),
                "{reg} must be exactly one of renamed/exempt"
            );
        }
        prop_assert!(ck.stats().table_bytes <= 1024);
    }

    /// Disassembly text parses back into the identical kernel, before
    /// and after metadata insertion.
    #[test]
    fn disassembly_roundtrips(p in arb_params()) {
        let kernel = synth(p);
        let parsed = rfv_isa::parse_kernel(
            kernel.name(),
            &kernel.disassemble(),
            kernel.launch(),
        ).unwrap();
        prop_assert_eq!(&parsed, &kernel);
        let ck = compile(&kernel, &CompileOptions::default()).unwrap();
        let parsed = rfv_isa::parse_kernel(
            ck.kernel().name(),
            &ck.kernel().disassemble(),
            ck.kernel().launch(),
        ).unwrap();
        prop_assert_eq!(&parsed, ck.kernel());
    }

    /// Binary kernel images round-trip losslessly for any generated
    /// kernel, before and after metadata insertion.
    #[test]
    fn binary_image_roundtrips(p in arb_params()) {
        let kernel = synth(p);
        let back = rfv_isa::decode_kernel(&rfv_isa::encode_kernel(&kernel).unwrap()).unwrap();
        prop_assert_eq!(&back, &kernel);
        let ck = compile(&kernel, &CompileOptions::default()).unwrap();
        let back = rfv_isa::decode_kernel(&rfv_isa::encode_kernel(ck.kernel()).unwrap()).unwrap();
        prop_assert_eq!(&back, ck.kernel());
    }

    /// Conditional branches all have reconvergence entries, pointing
    /// at valid PCs.
    #[test]
    fn reconvergence_table_is_total(p in arb_params()) {
        let kernel = synth(p);
        let ck = compile(&kernel, &CompileOptions::default()).unwrap();
        for (pc, item) in ck.kernel().items().iter().enumerate() {
            let Some(i) = item.as_instr() else { continue };
            if i.opcode == rfv_isa::Opcode::Bra && i.guard.is_some() {
                let entry = ck.reconv_at(pc);
                prop_assert!(entry.is_some(), "missing reconvergence for branch at {pc}");
                if let Some(Some(r)) = entry {
                    prop_assert!(r < ck.kernel().len());
                }
            }
        }
    }
}
