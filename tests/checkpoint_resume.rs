//! Differential tests for deterministic checkpoint/resume: restoring
//! a run at any cycle boundary and driving it to completion must be
//! *bit-identical* to the uninterrupted run in every observable —
//! per-SM statistics, final memories, merged trace events, and the
//! serialized Chrome JSON.

use proptest::prelude::*;

use rfv_bench::harness::{compile_full, Machine};
use rfv_compiler::CompiledKernel;
use rfv_sim::{
    simulate_resumable, simulate_resumable_traced, simulate_traced_checkpointed,
    simulate_traced_with_init, Checkpoint, SimConfig, SimError, TracedRun,
};
use rfv_trace::TraceEvent;
use rfv_workloads::{suite, synth, PaperGeometry, SynthParams, Workload};

fn chrome_json(events: &[TraceEvent]) -> String {
    let out = rfv_trace::chrome::write_trace(Vec::new(), events).expect("in-memory write");
    String::from_utf8(out).expect("chrome trace is utf-8")
}

/// A register-hungry multi-CTA workload that exercises the GPU-shrink
/// throttle, spill store, and swap machinery — the states a snapshot
/// must capture exactly.
fn pressured_workload() -> Workload {
    let p = SynthParams {
        regs: 28,
        loop_trips: 5,
        divergent_loop: true,
        diamond: true,
        mem_ops: 3,
        ctas: 8,
        threads_per_cta: 128,
        conc_ctas: 4,
    };
    Workload {
        paper: PaperGeometry {
            name: "synth-pressure",
            ctas: p.ctas,
            threads_per_cta: p.threads_per_cta,
            regs_per_kernel: 28,
            conc_ctas: p.conc_ctas,
        },
        kernel: synth(p),
    }
}

fn init_words() -> Vec<(u64, u32)> {
    (0..256).map(|i| (i * 4, (i * 37) as u32)).collect()
}

/// Runs the checkpointing engine, collecting every emitted snapshot.
fn run_with_checkpoints(
    kernel: &CompiledKernel,
    config: &SimConfig,
    every: u64,
) -> (TracedRun, Vec<Checkpoint>) {
    let mut checkpoints = Vec::new();
    let run =
        simulate_traced_checkpointed(kernel, config, &init_words(), 1 << 20, every, &mut |c| {
            checkpoints.push(c.clone());
            Ok(())
        })
        .expect("checkpointed run completes");
    (run, checkpoints)
}

/// The core differential: an uninterrupted run, a checkpointing run,
/// and a resume from every collected checkpoint must all agree bit
/// for bit.
fn assert_resume_matches(kernel: &CompiledKernel, config: &SimConfig, label: &str) {
    let uninterrupted =
        simulate_traced_with_init(kernel, config, &init_words(), 1 << 20).expect("baseline runs");
    // pick an interval that yields several boundaries inside the run
    let every = (uninterrupted.result.cycles / 5).max(1);
    let (checkpointed, checkpoints) = run_with_checkpoints(kernel, config, every);

    assert_eq!(
        checkpointed.result.per_sm, uninterrupted.result.per_sm,
        "{label}: checkpointing perturbed the run (stats)"
    );
    assert_eq!(
        checkpointed.result.memories, uninterrupted.result.memories,
        "{label}: checkpointing perturbed the run (memories)"
    );
    assert_eq!(
        checkpointed.events, uninterrupted.events,
        "{label}: checkpointing perturbed the run (events)"
    );
    assert!(
        checkpoints.len() >= 3,
        "{label}: want >=3 cycle boundaries, got {} (every={every}, cycles={})",
        checkpoints.len(),
        uninterrupted.result.cycles
    );

    let want_chrome = chrome_json(&uninterrupted.events);
    for c in &checkpoints {
        let resumed = simulate_resumable_traced(kernel, config, c)
            .unwrap_or_else(|e| panic!("{label}: resume at cycle {} failed: {e}", c.cycle));
        assert_eq!(
            resumed.result.cycles, uninterrupted.result.cycles,
            "{label}@{}: cycles",
            c.cycle
        );
        assert_eq!(
            resumed.result.per_sm, uninterrupted.result.per_sm,
            "{label}@{}: stats",
            c.cycle
        );
        assert_eq!(
            resumed.result.memories, uninterrupted.result.memories,
            "{label}@{}: memories",
            c.cycle
        );
        assert_eq!(
            resumed.events, uninterrupted.events,
            "{label}@{}: events",
            c.cycle
        );
        assert_eq!(
            chrome_json(&resumed.events),
            want_chrome,
            "{label}@{}: Chrome JSON",
            c.cycle
        );
    }
}

/// Every machine policy of the evaluation on a suite workload.
#[test]
fn resume_is_bit_identical_all_policies() {
    let w = suite::vectoradd();
    for m in [
        Machine::Conventional,
        Machine::Full128,
        Machine::Shrink64,
        Machine::HardwareOnly,
    ] {
        let ck = m.compile(&w);
        assert_resume_matches(&ck, &m.config(), &format!("{m:?}/{}", w.name()));
    }
}

/// Both GPU-shrink depths under register pressure: snapshots must
/// capture throttle balances, the spill store, and swapped-out warps.
#[test]
fn resume_is_bit_identical_under_shrink_pressure() {
    let w = pressured_workload();
    let ck = compile_full(&w);
    for pct in [50, 40] {
        assert_resume_matches(&ck, &SimConfig::gpu_shrink(pct), &format!("shrink{pct}"));
    }
}

/// Multi-SM runs checkpoint and resume every SM frame; the merged
/// trace must still be bit-identical.
#[test]
fn resume_is_bit_identical_multi_sm() {
    let w = suite::vectoradd();
    let ck = compile_full(&w);
    let mut config = SimConfig::baseline_full();
    config.num_sms = 4;
    assert_resume_matches(&ck, &config, "multi-sm");
}

/// A checkpoint taken under one configuration must refuse to resume
/// under another (typed error, not silent divergence).
#[test]
fn wrong_machine_resume_is_rejected() {
    let w = suite::vectoradd();
    let ck = compile_full(&w);
    let cfg = SimConfig::baseline_full();
    let (_, checkpoints) = run_with_checkpoints(&ck, &cfg, 300);
    let c = checkpoints.first().expect("at least one checkpoint");
    let other = SimConfig::gpu_shrink(50);
    assert!(matches!(
        simulate_resumable(&ck, &other, c),
        Err(SimError::BadCheckpoint(_))
    ));
    // a different kernel is rejected too
    let other_ck = compile_full(&suite::reduction());
    assert!(matches!(
        simulate_resumable(&other_ck, &cfg, c),
        Err(SimError::BadCheckpoint(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Property: for a *random* checkpoint interval, the first
    /// snapshot taken resumes to a bit-identical end state.
    #[test]
    fn resume_at_random_cycle_matches(every in 1u64..1200) {
        let w = suite::vectoradd();
        let ck = compile_full(&w);
        let cfg = SimConfig::baseline_full();
        let uninterrupted =
            simulate_traced_with_init(&ck, &cfg, &init_words(), 1 << 20).expect("baseline");
        prop_assume!(every < uninterrupted.result.cycles);
        let (_, checkpoints) = run_with_checkpoints(&ck, &cfg, every);
        prop_assume!(!checkpoints.is_empty());
        let resumed =
            simulate_resumable_traced(&ck, &cfg, &checkpoints[0]).expect("resume");
        prop_assert_eq!(&resumed.result.per_sm, &uninterrupted.result.per_sm);
        prop_assert_eq!(&resumed.result.memories, &uninterrupted.result.memories);
        prop_assert_eq!(&resumed.events, &uninterrupted.events);
    }

    /// Property: the container codec round-trips any checkpoint the
    /// engine emits, and every single-bit corruption is rejected.
    #[test]
    fn emitted_checkpoints_round_trip_and_reject_corruption(every in 50u64..600) {
        let w = suite::vectoradd();
        let ck = compile_full(&w);
        let cfg = SimConfig::baseline_full();
        let (_, checkpoints) = run_with_checkpoints(&ck, &cfg, every);
        prop_assume!(!checkpoints.is_empty());
        let c = &checkpoints[0];
        let bytes = c.to_bytes();
        prop_assert_eq!(&Checkpoint::from_bytes(&bytes).expect("round trip"), c);
        let mut corrupt = bytes.clone();
        let idx = (every as usize * 131) % corrupt.len();
        corrupt[idx] ^= 0x10;
        prop_assert!(matches!(
            Checkpoint::from_bytes(&corrupt),
            Err(SimError::BadCheckpoint(_))
        ));
    }
}
