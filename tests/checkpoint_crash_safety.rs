//! Crash-safety tests for the checkpoint CLI surface: corrupt files
//! degrade into typed errors (never panics), the atomic write
//! protocol keeps prior checkpoints loadable through a mid-write
//! crash, a resumed CLI run is byte-identical to an uninterrupted
//! one, and a watchdog abort leaves both a loadable checkpoint and a
//! per-warp diagnostic artifact.

use std::path::PathBuf;
use std::process::{Command, Output};

use rfv_sim::{Checkpoint, SimError};

fn rfvsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rfvsim"))
}

/// A unique scratch directory per test (std-only: no tempdir crate).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfv-ckpt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn rfvsim")
}

fn stderr_text(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Checkpoint files written by the CLI, oldest first (`.tmp` orphans
/// excluded — they are by construction incomplete).
fn checkpoint_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read ckpt dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rfvckpt"))
        .collect();
    files.sort();
    files
}

/// End to end: the CLI writes checkpoints a resumed CLI run turns
/// into byte-identical stats, and corrupting those files on disk
/// yields typed rejections, not panics.
#[test]
fn cli_checkpoints_resume_byte_identical_and_reject_corruption() {
    let dir = scratch("resume");
    let cks = dir.join("cks");
    let full_json = dir.join("full.json");
    let resumed_json = dir.join("resumed.json");

    let out = run(rfvsim()
        .args(["VectorAdd", "--checkpoint-every", "400", "--ckpt-dir"])
        .arg(&cks)
        .arg("--stats-json")
        .arg(&full_json));
    assert!(
        out.status.success(),
        "checkpointed run: {}",
        stderr_text(&out)
    );
    let files = checkpoint_files(&cks);
    assert!(!files.is_empty(), "no checkpoints were written");

    // every file the CLI wrote parses and carries its boundary cycle
    for f in &files {
        let bytes = std::fs::read(f).expect("read checkpoint");
        let c = Checkpoint::from_bytes(&bytes).expect("CLI checkpoint parses");
        assert!(
            c.cycle > 0 && c.cycle.is_multiple_of(400),
            "cycle {}",
            c.cycle
        );
    }

    // resuming the last checkpoint reproduces the full run's stats
    // artifact byte for byte
    let last = files.last().expect("at least one");
    let out = run(rfvsim()
        .args(["VectorAdd", "--resume"])
        .arg(last)
        .arg("--stats-json")
        .arg(&resumed_json));
    assert!(out.status.success(), "resume run: {}", stderr_text(&out));
    let full = std::fs::read(&full_json).expect("full stats");
    let resumed = std::fs::read(&resumed_json).expect("resumed stats");
    assert_eq!(full, resumed, "resumed stats artifact diverged");

    // corruption of the on-disk file is a typed library error ...
    let bytes = std::fs::read(last).expect("read checkpoint");
    for cut in [0, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(matches!(
            Checkpoint::from_bytes(&bytes[..cut]),
            Err(SimError::BadCheckpoint(_))
        ));
    }
    for i in (0..bytes.len()).step_by(97) {
        let mut b = bytes.clone();
        b[i] ^= 0x04;
        assert!(matches!(
            Checkpoint::from_bytes(&b),
            Err(SimError::BadCheckpoint(_))
        ));
    }

    // ... and an ordinary CLI error (exit 1, no panic exit code 101)
    let bad = dir.join("bad.rfvckpt");
    let mut b = bytes.clone();
    let mid = b.len() / 2;
    b[mid] ^= 0xff;
    std::fs::write(&bad, &b).expect("write corrupted file");
    let out = run(rfvsim().args(["VectorAdd", "--resume"]).arg(&bad));
    assert_eq!(out.status.code(), Some(1), "corrupt resume must exit 1");
    assert!(
        stderr_text(&out).contains("bad checkpoint"),
        "stderr: {}",
        stderr_text(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A SIGKILL mid-write leaves only an orphaned `.tmp` behind; the
/// previous fully-renamed checkpoint must still load and resume.
#[test]
fn interrupted_write_leaves_prior_checkpoint_loadable() {
    let dir = scratch("atomic");
    let cks = dir.join("cks");
    let out = run(rfvsim()
        .args(["VectorAdd", "--checkpoint-every", "500", "--ckpt-dir"])
        .arg(&cks));
    assert!(out.status.success(), "{}", stderr_text(&out));
    let files = checkpoint_files(&cks);
    assert!(!files.is_empty());

    // simulate the crash: a half-written next checkpoint (.tmp never
    // renamed) sitting next to the complete ones
    let prior = files.last().expect("complete checkpoint").clone();
    let torn = std::fs::read(&prior).expect("read");
    std::fs::write(
        cks.join("ckpt-999999999999.rfvckpt.tmp"),
        &torn[..torn.len() / 3],
    )
    .expect("write torn tmp");

    // the complete checkpoint is unaffected by the torn neighbour
    let bytes = std::fs::read(&prior).expect("read prior");
    Checkpoint::from_bytes(&bytes).expect("prior checkpoint still parses");
    let out = run(rfvsim().args(["VectorAdd", "--resume"]).arg(&prior));
    assert!(
        out.status.success(),
        "resume after torn write: {}",
        stderr_text(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A watchdog abort under `--checkpoint-every` leaves a loadable
/// checkpoint at the last boundary, and `--stats-json` captures the
/// per-warp diagnostic (pc/status/outstanding) in the artifact.
#[test]
fn watchdog_abort_leaves_checkpoint_and_warp_diagnostic() {
    let dir = scratch("watchdog");
    let cks = dir.join("cks");
    let json = dir.join("wd.json");
    let out = run(rfvsim()
        .args([
            "MatrixMul",
            "--max-cycles",
            "300",
            "--checkpoint-every",
            "100",
            "--ckpt-dir",
        ])
        .arg(&cks)
        .arg("--stats-json")
        .arg(&json));
    assert_eq!(out.status.code(), Some(1), "watchdog abort exits 1");
    assert!(
        stderr_text(&out).contains("watchdog"),
        "stderr: {}",
        stderr_text(&out)
    );

    // the last boundary before the abort is on disk and loads
    let files = checkpoint_files(&cks);
    assert!(!files.is_empty(), "no checkpoint survived the abort");
    let bytes = std::fs::read(files.last().expect("last")).expect("read");
    let c = Checkpoint::from_bytes(&bytes).expect("post-abort checkpoint parses");
    assert!(c.cycle <= 300, "boundary {} past the budget", c.cycle);

    // the per-warp diagnostic round-trips through the JSON artifact
    let text = std::fs::read_to_string(&json).expect("watchdog artifact");
    for key in [
        "watchdog.limit_cycles",
        "watchdog.cycle",
        "watchdog.warp.000.pc",
        "watchdog.warp.000.status.",
        "watchdog.warp.000.outstanding",
    ] {
        assert!(text.contains(key), "artifact missing {key}: {text}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Flag-validation errors are usage errors (exit 2), not panics.
#[test]
fn checkpoint_flag_misuse_is_a_usage_error() {
    for args in [
        vec!["VectorAdd", "--checkpoint-every", "0"],
        vec!["VectorAdd", "--checkpoint-every", "abc"],
        vec!["VectorAdd", "--resume"],
        vec!["VectorAdd", "--compare", "--checkpoint-every", "100"],
        vec!["VectorAdd", "--checkpoint-every", "100", "--resume", "x"],
        vec!["--probe-shrink"],
        vec!["--probe-shrink", "VectorAdd", "120"],
        vec!["--probe-shrink", "NoSuchWorkload"],
    ] {
        let out = run(rfvsim().args(&args));
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
    }
}
