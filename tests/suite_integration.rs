//! Cross-crate integration: every Table 1 benchmark compiles, runs to
//! completion on every machine configuration, and produces
//! bit-identical outputs regardless of the virtualization scheme.

use rfv_bench::harness::Machine;
use rfv_workloads::suite;

/// Output buffers every kernel may write.
const OUTPUT_BASES: [u64; 4] = [0x0030_0000, 0x0040_0000, 0x0050_0000, 0x0060_0000];

#[test]
fn all_benchmarks_complete_on_all_machines() {
    for w in suite::all() {
        for m in [
            Machine::Conventional,
            Machine::Full128,
            Machine::Shrink64,
            Machine::HardwareOnly,
        ] {
            let r = m.run(&w);
            assert!(r.cycles > 0, "{} on {m:?}", w.name());
            assert!(
                r.sm0().ctas_completed > 0,
                "{} on {m:?} completed no CTAs",
                w.name()
            );
        }
    }
}

#[test]
fn virtualization_transparency_across_the_suite() {
    for w in suite::all() {
        let reference = Machine::Conventional.run(&w);
        for m in [Machine::Full128, Machine::Shrink64, Machine::HardwareOnly] {
            let got = m.run(&w);
            for base in OUTPUT_BASES {
                for off in (0..8192u64).step_by(4) {
                    assert_eq!(
                        reference.memories[0].peek_word(base + off),
                        got.memories[0].peek_word(base + off),
                        "{} on {m:?}: output mismatch at {:#x}",
                        w.name(),
                        base + off
                    );
                }
            }
        }
    }
}

#[test]
fn full_scheme_reduces_peak_demand_suite_wide() {
    let mut improved = 0;
    for w in suite::all() {
        let base = Machine::Conventional.run(&w);
        let full = Machine::Full128.run(&w);
        if full.sm0().regfile.peak_live < base.sm0().regfile.peak_live {
            improved += 1;
        }
    }
    assert!(
        improved >= 14,
        "virtualization should shrink peak register demand on nearly every benchmark, got {improved}/16"
    );
}

#[test]
fn gpu_shrink_overhead_is_small_suite_wide() {
    // the paper: 0.58% average overhead, individual benchmarks can
    // even speed up; allow a loose bound per benchmark
    for w in suite::all() {
        let base = Machine::Conventional.run(&w);
        let shrink = Machine::Shrink64.run(&w);
        let pct = 100.0 * (shrink.cycles as f64 - base.cycles as f64) / base.cycles as f64;
        assert!(
            pct < 30.0,
            "{}: GPU-shrink overhead {pct:.1}% is out of band",
            w.name()
        );
    }
}

#[test]
fn metadata_overhead_matches_paper_band() {
    // paper: ~11% dynamic decode increase with no flag cache, ~0.2%
    // with ten entries; static growth well under 25%
    for w in suite::all() {
        let ck = rfv_bench::harness::compile_full(&w);
        let s = ck.stats();
        assert!(
            s.static_increase_pct < 30.0,
            "{}: static increase {:.1}%",
            w.name(),
            s.static_increase_pct
        );
    }
}

#[test]
fn hardware_only_never_beats_full_scheme() {
    use rfv_bench::harness::conventional_alloc;
    for w in suite::all() {
        let full = Machine::Full128.run(&w);
        let hw = Machine::HardwareOnly.run(&w);
        let alloc = conventional_alloc(&w);
        let red_full = alloc.saturating_sub(full.sm0().regfile.peak_live);
        let red_hw = alloc.saturating_sub(hw.sm0().regfile.peak_live);
        assert!(
            red_hw <= red_full,
            "{}: [46] ({red_hw}) cannot out-reduce compiler-assisted release ({red_full})",
            w.name()
        );
    }
}

#[test]
fn suite_kernels_roundtrip_through_binary_images() {
    for w in suite::all() {
        // fresh kernel
        let image =
            rfv_isa::encode_kernel(&w.kernel).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let back = rfv_isa::decode_kernel(&image).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        assert_eq!(back, w.kernel, "{}", w.name());
        // compiled kernel (with embedded pir/pbr metadata)
        let ck = rfv_bench::harness::compile_full(&w);
        let image = rfv_isa::encode_kernel(ck.kernel())
            .unwrap_or_else(|e| panic!("{} compiled: {e}", w.name()));
        let back =
            rfv_isa::decode_kernel(&image).unwrap_or_else(|e| panic!("{} compiled: {e}", w.name()));
        assert_eq!(&back, ck.kernel(), "{} compiled", w.name());
    }
}

#[test]
fn suite_kernels_roundtrip_through_assembly_text() {
    for w in suite::all() {
        let parsed = rfv_isa::parse_kernel(w.name(), &w.kernel.disassemble(), w.kernel.launch())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        assert_eq!(parsed, w.kernel, "{}", w.name());
    }
}

#[test]
fn reference_models_validate_numerical_outputs() {
    use rfv_workloads::validate::{init_words_for, standard_init, validator_for};
    for w in suite::all() {
        let Some(validator) = validator_for(w.name()) else {
            continue;
        };
        let init = standard_init(init_words_for(&w));
        let ck = rfv_bench::harness::compile_full(&w);
        for cfg in [
            rfv_sim::SimConfig::baseline_full(),
            rfv_sim::SimConfig::gpu_shrink(50),
        ] {
            let r = rfv_sim::simulate_with_init(&ck, &cfg, &init)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            let peek = |addr: u64| r.memories[0].peek_word(addr);
            validator(&w, &init, &peek)
                .unwrap_or_else(|e| panic!("{} reference model: {e}", w.name()));
        }
    }
}
