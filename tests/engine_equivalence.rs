//! Differential tests for the cycle-engine hot-path overhauls:
//!
//! * the production SoA wake-time min-scan must be *bit-identical* to
//!   the incremental wake-event index (kept as its differential
//!   counterpart behind `SimConfig::incremental_wake_index`);
//! * the threaded-code execution plan must be *bit-identical* to the
//!   match-dispatch interpreter (kept behind
//!   `SimConfig::reference_interpreter`) in every observable —
//!   including under sanitizer recovery, fault injection, and
//!   checkpoints resumed on the *other* engine;
//! * the predecoded program image must match the compiled program
//!   field for field.

use proptest::prelude::*;

use rfv_bench::harness::{compile_full, Machine};
use rfv_compiler::CompiledKernel;
use rfv_isa::kernel::ProgItem;
use rfv_sim::predecode::{PdItem, PredecodedKernel};
use rfv_sim::warp::NO_RECONV;
use rfv_sim::{
    simulate, simulate_resumable_traced, simulate_traced_checkpointed, simulate_traced_with_init,
    Checkpoint, FaultPlan, SanitizeLevel, SimConfig, TracedRun,
};
use rfv_trace::TraceEvent;
use rfv_workloads::{suite, synth, PaperGeometry, SynthParams, Workload};

fn chrome_json(events: &[TraceEvent]) -> String {
    let out = rfv_trace::chrome::write_trace(Vec::new(), events).expect("in-memory write");
    String::from_utf8(out).expect("chrome trace is utf-8")
}

/// A register-hungry multi-CTA workload that triggers the GPU-shrink
/// throttle and its spill/swap machinery (the `SwappedOut` wake
/// events the incremental index must track exactly).
fn pressured_workload() -> Workload {
    let p = SynthParams {
        regs: 28,
        loop_trips: 5,
        divergent_loop: true,
        diamond: true,
        mem_ops: 3,
        ctas: 8,
        threads_per_cta: 128,
        conc_ctas: 4,
    };
    Workload {
        paper: PaperGeometry {
            name: "synth-pressure",
            ctas: p.ctas,
            threads_per_cta: p.threads_per_cta,
            regs_per_kernel: 28,
            conc_ctas: p.conc_ctas,
        },
        kernel: synth(p),
    }
}

fn init_words() -> Vec<(u64, u32)> {
    (0..256).map(|i| (i * 4, (i * 37) as u32)).collect()
}

/// Runs `kernel` under `config` with the incremental wake index and
/// with the production SoA min-scan, asserting the two runs are
/// bit-identical in every observable: statistics, final memories,
/// trace events, and serialized Chrome JSON.
fn assert_engines_match(
    kernel: &rfv_compiler::CompiledKernel,
    config: &SimConfig,
    label: &str,
) -> TracedRun {
    let init = init_words();
    let mut incr_cfg = *config;
    incr_cfg.incremental_wake_index = true;
    let mut ref_cfg = *config;
    ref_cfg.incremental_wake_index = false;

    let incr = simulate_traced_with_init(kernel, &incr_cfg, &init, 1 << 20).unwrap();
    let refr = simulate_traced_with_init(kernel, &ref_cfg, &init, 1 << 20).unwrap();

    assert_eq!(incr.result.cycles, refr.result.cycles, "{label}: cycles");
    assert_eq!(incr.result.per_sm, refr.result.per_sm, "{label}: stats");
    assert_eq!(
        incr.result.memories, refr.result.memories,
        "{label}: memories"
    );
    assert_eq!(incr.events, refr.events, "{label}: events");
    assert_eq!(
        chrome_json(&incr.events),
        chrome_json(&refr.events),
        "{label}: Chrome JSON"
    );
    incr
}

/// The four machine policies of the evaluation, on workloads covering
/// streaming, reduction (barriers), and divergence.
#[test]
fn incremental_wake_index_matches_rescan_all_policies() {
    for w in [suite::vectoradd(), suite::reduction(), suite::bfs()] {
        let machines = [
            Machine::Conventional,
            Machine::Full128,
            Machine::Shrink64,
            Machine::HardwareOnly,
        ];
        for m in machines {
            let ck = m.compile(&w);
            let label = format!("{:?}/{}", m, w.name());
            assert_engines_match(&ck, &m.config(), &label);
        }
    }
}

/// Both GPU-shrink configurations under register pressure: the
/// spill/swap path populates the wake index with `SwappedOut` events,
/// the hardest case for the lazy-invalidation argument.
#[test]
fn incremental_wake_index_matches_rescan_under_shrink_pressure() {
    let w = pressured_workload();
    let ck = compile_full(&w);
    for pct in [50, 40] {
        let config = SimConfig::gpu_shrink(pct);
        let run = assert_engines_match(&ck, &config, &format!("shrink{pct}"));
        assert!(run.result.cycles > 0, "shrink{pct} must simulate");
    }
}

/// Multi-SM runs drain per-SM wake indexes independently; check the
/// sharded path too.
#[test]
fn incremental_wake_index_matches_rescan_multi_sm() {
    let w = suite::vectoradd();
    let ck = compile_full(&w);
    let mut config = SimConfig::baseline_full();
    config.num_sms = 4;
    config.sm_jobs = Some(1);
    assert_engines_match(&ck, &config, "multi-sm");
}

/// Predecode is purely representational: every `PdItem` must carry
/// exactly the fields of its `ProgItem`, with release flags,
/// reconvergence PCs, and the scoreboard mask prefetched from the
/// same side tables `try_issue` used to consult per cycle.
#[test]
fn predecoded_image_matches_compiled_program() {
    for w in [suite::vectoradd(), suite::reduction(), pressured_workload()] {
        let ck = compile_full(&w);
        let pd = PredecodedKernel::new(&ck);
        let program = ck.kernel();
        assert_eq!(pd.len(), program.len(), "{}: item count", w.name());
        assert_eq!(pd.is_empty(), program.items().is_empty());
        for (pc, item) in program.items().iter().enumerate() {
            match (item, pd.item(pc)) {
                (ProgItem::Pir(p), PdItem::Pir { release_count }) => {
                    assert_eq!(usize::from(*release_count), p.release_count());
                }
                (ProgItem::Pbr(p), PdItem::Pbr { lo, hi }) => {
                    assert_eq!(pd.pbr_regs(*lo, *hi), p.regs());
                }
                (ProgItem::Instr(i), PdItem::Instr(d)) => {
                    assert_eq!(d.opcode, i.opcode);
                    assert_eq!(d.dst, i.dst);
                    assert_eq!(d.pdst, i.pdst);
                    assert_eq!(d.psrc, i.psrc);
                    assert_eq!(d.guard, i.guard);
                    assert_eq!(d.mem_offset, i.mem_offset);
                    assert_eq!(d.srcs(), &i.srcs[..]);
                    assert_eq!(d.target as usize, i.target.unwrap_or(0));
                    assert_eq!(d.reconv, ck.reconv_at(pc).flatten().unwrap_or(NO_RECONV));
                    assert_eq!(d.flags, ck.flags_at(pc));
                    let mut mask = 0u64;
                    for r in i.reads() {
                        mask |= 1 << r.index();
                    }
                    if let Some(dst) = i.dst {
                        mask |= 1 << dst.index();
                    }
                    assert_eq!(d.hazard_mask, mask, "pc {pc}");
                    for (slot, r) in d.src_regs() {
                        assert_eq!(i.srcs[slot].reg(), Some(r));
                    }
                }
                (want, got) => panic!("{}: pc {pc}: {want:?} became {got:?}", w.name()),
            }
        }
    }
}

/// Runs `kernel` under the threaded-code execution plan and under the
/// reference interpreter, asserting the two engines are bit-identical
/// in every observable: statistics, final memories, trace events, and
/// serialized Chrome JSON. Returns the plan-engine run.
fn assert_plan_matches_interpreter(
    kernel: &CompiledKernel,
    config: &SimConfig,
    label: &str,
) -> TracedRun {
    let init = init_words();
    let mut plan_cfg = *config;
    plan_cfg.reference_interpreter = false;
    let mut int_cfg = *config;
    int_cfg.reference_interpreter = true;

    let plan = simulate_traced_with_init(kernel, &plan_cfg, &init, 1 << 20).unwrap();
    let intp = simulate_traced_with_init(kernel, &int_cfg, &init, 1 << 20).unwrap();

    assert_eq!(plan.result.cycles, intp.result.cycles, "{label}: cycles");
    assert_eq!(plan.result.per_sm, intp.result.per_sm, "{label}: stats");
    assert_eq!(
        plan.result.memories, intp.result.memories,
        "{label}: memories"
    );
    assert_eq!(plan.events, intp.events, "{label}: events");
    assert_eq!(
        chrome_json(&plan.events),
        chrome_json(&intp.events),
        "{label}: Chrome JSON"
    );
    plan
}

/// The execution plan vs the interpreter on the four machine policies
/// across streaming, reduction (barriers), and divergence workloads.
#[test]
fn plan_engine_matches_interpreter_all_policies() {
    for w in [suite::vectoradd(), suite::reduction(), suite::bfs()] {
        let machines = [
            Machine::Conventional,
            Machine::Full128,
            Machine::Shrink64,
            Machine::HardwareOnly,
        ];
        for m in machines {
            let ck = m.compile(&w);
            let label = format!("plan/{:?}/{}", m, w.name());
            assert_plan_matches_interpreter(&ck, &m.config(), &label);
        }
    }
}

/// Both GPU-shrink points under register pressure (spill/swap/throttle
/// machinery), and a sharded multi-SM run: the hardest stateful paths
/// for handler-level equivalence.
#[test]
fn plan_engine_matches_interpreter_under_pressure_and_multi_sm() {
    let w = pressured_workload();
    let ck = compile_full(&w);
    for pct in [50, 40] {
        let run = assert_plan_matches_interpreter(
            &ck,
            &SimConfig::gpu_shrink(pct),
            &format!("plan/shrink{pct}"),
        );
        assert!(run.result.cycles > 0, "shrink{pct} must simulate");
    }

    let wv = suite::vectoradd();
    let ckv = compile_full(&wv);
    let mut config = SimConfig::baseline_full();
    config.num_sms = 4;
    config.sm_jobs = Some(1);
    assert_plan_matches_interpreter(&ckv, &config, "plan/multi-sm");
}

/// Fault injection draws from the same RNG stream in both engines, and
/// the sanitizer's Recover path (detection → CTA quarantine → squash)
/// must fire identically: same detections, same quarantined CTAs, same
/// squash traces. At least one seed must actually quarantine, or the
/// test is vacuous.
#[test]
fn plan_engine_matches_interpreter_under_recover_faults() {
    let w = pressured_workload();
    let ck = compile_full(&w);
    let mut quarantines = 0u64;
    for seed in [3u64, 11, 29] {
        let mut cfg = SimConfig::gpu_shrink(50);
        cfg.faults = FaultPlan::parse("all:2", seed).expect("spec parses");
        cfg.sanitize = SanitizeLevel::Recover;
        let run = assert_plan_matches_interpreter(&ck, &cfg, &format!("plan/recover/seed{seed}"));
        for s in &run.result.per_sm {
            quarantines += s.quarantined_ctas;
        }
    }
    assert!(
        quarantines > 0,
        "no seed quarantined a CTA; the Recover differential exercised nothing"
    );
}

/// Checkpoints carry engine-independent architectural state: a
/// snapshot taken mid-run on one engine must resume on the *other*
/// engine to an end state bit-identical to an uninterrupted run.
/// The checkpoint interval is a prime, so slice boundaries land at
/// ragged cycles relative to warp issue.
#[test]
fn checkpoints_resume_bit_identically_across_engines() {
    let w = pressured_workload();
    let ck = compile_full(&w);
    let base = SimConfig::gpu_shrink(50);

    for (take_ref, resume_ref) in [(false, true), (true, false)] {
        let mut take_cfg = base;
        take_cfg.reference_interpreter = take_ref;
        let mut resume_cfg = base;
        resume_cfg.reference_interpreter = resume_ref;
        let label = format!("take_ref={take_ref}→resume_ref={resume_ref}");

        let uninterrupted = simulate_traced_with_init(&ck, &take_cfg, &init_words(), 1 << 20)
            .expect("baseline runs");
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let every = (uninterrupted.result.cycles / 7).max(1) | 1;
        let checkpointed =
            simulate_traced_checkpointed(&ck, &take_cfg, &init_words(), 1 << 20, every, &mut |c| {
                checkpoints.push(c.clone());
                Ok(())
            })
            .expect("checkpointed run completes");
        assert_eq!(
            checkpointed.result.per_sm, uninterrupted.result.per_sm,
            "{label}: checkpointing perturbed the run"
        );
        assert!(checkpoints.len() >= 3, "{label}: want several boundaries");

        for c in &checkpoints {
            let resumed = simulate_resumable_traced(&ck, &resume_cfg, c)
                .unwrap_or_else(|e| panic!("{label}: resume at cycle {} failed: {e}", c.cycle));
            assert_eq!(
                resumed.result.per_sm, uninterrupted.result.per_sm,
                "{label}: stats after resume at cycle {}",
                c.cycle
            );
            assert_eq!(
                resumed.result.memories, uninterrupted.result.memories,
                "{label}: memories after resume at cycle {}",
                c.cycle
            );
            assert_eq!(
                resumed.events, uninterrupted.events,
                "{label}: events after resume at cycle {}",
                c.cycle
            );
        }
    }
}

fn arb_params() -> impl Strategy<Value = SynthParams> {
    (
        6u8..=63,      // regs — up to the renaming ceiling
        0u32..10,      // loop trips
        any::<bool>(), // divergent loop
        any::<bool>(), // diamond
        0u8..=3,       // mem ops
        1u32..=4,      // ctas
        prop_oneof![Just(32u32), Just(64), Just(128)],
        1u32..=3, // conc ctas
    )
        .prop_map(
            |(regs, loop_trips, divergent_loop, diamond, mem_ops, ctas, threads, conc)| {
                SynthParams {
                    regs,
                    loop_trips,
                    divergent_loop,
                    diamond,
                    mem_ops,
                    ctas,
                    threads_per_cta: threads,
                    conc_ctas: conc,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any synthesizable kernel shape produces bit-identical stats and
    /// memories on both engines under all four machine policies.
    #[test]
    fn random_kernels_identical_on_both_engines(p in arb_params()) {
        let w = Workload {
            paper: PaperGeometry {
                name: "synth-prop",
                ctas: p.ctas,
                threads_per_cta: p.threads_per_cta,
                regs_per_kernel: p.regs as usize,
                conc_ctas: p.conc_ctas,
            },
            kernel: synth(p),
        };
        let machines = [
            Machine::Conventional,
            Machine::Full128,
            Machine::Shrink64,
            Machine::HardwareOnly,
        ];
        for m in machines {
            let ck = m.compile(&w);
            let mut plan_cfg = m.config();
            plan_cfg.reference_interpreter = false;
            let mut int_cfg = m.config();
            int_cfg.reference_interpreter = true;
            let plan = simulate(&ck, &plan_cfg).expect("plan engine runs");
            let intp = simulate(&ck, &int_cfg).expect("interpreter runs");
            prop_assert_eq!(&plan.per_sm, &intp.per_sm, "{:?}: stats", m);
            prop_assert_eq!(&plan.memories, &intp.memories, "{:?}: memories", m);
        }
    }
}
