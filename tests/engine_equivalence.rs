//! Differential tests for the cycle-engine hot-path overhaul: the
//! incremental wake-event index must be *bit-identical* to the
//! pre-overhaul O(warps) status rescan (kept as an executable
//! specification behind `SimConfig::reference_wake_scan`), and the
//! predecoded program image must match the compiled program field for
//! field.

use rfv_bench::harness::{compile_full, Machine};
use rfv_isa::kernel::ProgItem;
use rfv_sim::predecode::{PdItem, PredecodedKernel};
use rfv_sim::warp::NO_RECONV;
use rfv_sim::{simulate_traced_with_init, SimConfig, TracedRun};
use rfv_trace::TraceEvent;
use rfv_workloads::{suite, synth, PaperGeometry, SynthParams, Workload};

fn chrome_json(events: &[TraceEvent]) -> String {
    let out = rfv_trace::chrome::write_trace(Vec::new(), events).expect("in-memory write");
    String::from_utf8(out).expect("chrome trace is utf-8")
}

/// A register-hungry multi-CTA workload that triggers the GPU-shrink
/// throttle and its spill/swap machinery (the `SwappedOut` wake
/// events the incremental index must track exactly).
fn pressured_workload() -> Workload {
    let p = SynthParams {
        regs: 28,
        loop_trips: 5,
        divergent_loop: true,
        diamond: true,
        mem_ops: 3,
        ctas: 8,
        threads_per_cta: 128,
        conc_ctas: 4,
    };
    Workload {
        paper: PaperGeometry {
            name: "synth-pressure",
            ctas: p.ctas,
            threads_per_cta: p.threads_per_cta,
            regs_per_kernel: 28,
            conc_ctas: p.conc_ctas,
        },
        kernel: synth(p),
    }
}

fn init_words() -> Vec<(u64, u32)> {
    (0..256).map(|i| (i * 4, (i * 37) as u32)).collect()
}

/// Runs `kernel` under `config` with the incremental wake index and
/// with the reference rescan, asserting the two runs are
/// bit-identical in every observable: statistics, final memories,
/// trace events, and serialized Chrome JSON.
fn assert_engines_match(
    kernel: &rfv_compiler::CompiledKernel,
    config: &SimConfig,
    label: &str,
) -> TracedRun {
    let init = init_words();
    let mut incr_cfg = *config;
    incr_cfg.reference_wake_scan = false;
    let mut ref_cfg = *config;
    ref_cfg.reference_wake_scan = true;

    let incr = simulate_traced_with_init(kernel, &incr_cfg, &init, 1 << 20).unwrap();
    let refr = simulate_traced_with_init(kernel, &ref_cfg, &init, 1 << 20).unwrap();

    assert_eq!(incr.result.cycles, refr.result.cycles, "{label}: cycles");
    assert_eq!(incr.result.per_sm, refr.result.per_sm, "{label}: stats");
    assert_eq!(
        incr.result.memories, refr.result.memories,
        "{label}: memories"
    );
    assert_eq!(incr.events, refr.events, "{label}: events");
    assert_eq!(
        chrome_json(&incr.events),
        chrome_json(&refr.events),
        "{label}: Chrome JSON"
    );
    incr
}

/// The four machine policies of the evaluation, on workloads covering
/// streaming, reduction (barriers), and divergence.
#[test]
fn incremental_wake_index_matches_rescan_all_policies() {
    for w in [suite::vectoradd(), suite::reduction(), suite::bfs()] {
        let machines = [
            Machine::Conventional,
            Machine::Full128,
            Machine::Shrink64,
            Machine::HardwareOnly,
        ];
        for m in machines {
            let ck = m.compile(&w);
            let label = format!("{:?}/{}", m, w.name());
            assert_engines_match(&ck, &m.config(), &label);
        }
    }
}

/// Both GPU-shrink configurations under register pressure: the
/// spill/swap path populates the wake index with `SwappedOut` events,
/// the hardest case for the lazy-invalidation argument.
#[test]
fn incremental_wake_index_matches_rescan_under_shrink_pressure() {
    let w = pressured_workload();
    let ck = compile_full(&w);
    for pct in [50, 40] {
        let config = SimConfig::gpu_shrink(pct);
        let run = assert_engines_match(&ck, &config, &format!("shrink{pct}"));
        assert!(run.result.cycles > 0, "shrink{pct} must simulate");
    }
}

/// Multi-SM runs drain per-SM wake indexes independently; check the
/// sharded path too.
#[test]
fn incremental_wake_index_matches_rescan_multi_sm() {
    let w = suite::vectoradd();
    let ck = compile_full(&w);
    let mut config = SimConfig::baseline_full();
    config.num_sms = 4;
    config.sm_jobs = Some(1);
    assert_engines_match(&ck, &config, "multi-sm");
}

/// Predecode is purely representational: every `PdItem` must carry
/// exactly the fields of its `ProgItem`, with release flags,
/// reconvergence PCs, and the scoreboard mask prefetched from the
/// same side tables `try_issue` used to consult per cycle.
#[test]
fn predecoded_image_matches_compiled_program() {
    for w in [suite::vectoradd(), suite::reduction(), pressured_workload()] {
        let ck = compile_full(&w);
        let pd = PredecodedKernel::new(&ck);
        let program = ck.kernel();
        assert_eq!(pd.len(), program.len(), "{}: item count", w.name());
        assert_eq!(pd.is_empty(), program.items().is_empty());
        for (pc, item) in program.items().iter().enumerate() {
            match (item, pd.item(pc)) {
                (ProgItem::Pir(p), PdItem::Pir { release_count }) => {
                    assert_eq!(usize::from(*release_count), p.release_count());
                }
                (ProgItem::Pbr(p), PdItem::Pbr { lo, hi }) => {
                    assert_eq!(pd.pbr_regs(*lo, *hi), p.regs());
                }
                (ProgItem::Instr(i), PdItem::Instr(d)) => {
                    assert_eq!(d.opcode, i.opcode);
                    assert_eq!(d.dst, i.dst);
                    assert_eq!(d.pdst, i.pdst);
                    assert_eq!(d.psrc, i.psrc);
                    assert_eq!(d.guard, i.guard);
                    assert_eq!(d.mem_offset, i.mem_offset);
                    assert_eq!(d.srcs(), &i.srcs[..]);
                    assert_eq!(d.target as usize, i.target.unwrap_or(0));
                    assert_eq!(d.reconv, ck.reconv_at(pc).flatten().unwrap_or(NO_RECONV));
                    assert_eq!(d.flags, ck.flags_at(pc));
                    let mut mask = 0u64;
                    for r in i.reads() {
                        mask |= 1 << r.index();
                    }
                    if let Some(dst) = i.dst {
                        mask |= 1 << dst.index();
                    }
                    assert_eq!(d.hazard_mask, mask, "pc {pc}");
                    for (slot, r) in d.src_regs() {
                        assert_eq!(i.srcs[slot].reg(), Some(r));
                    }
                }
                (want, got) => panic!("{}: pc {pc}: {want:?} became {got:?}", w.name()),
            }
        }
    }
}
