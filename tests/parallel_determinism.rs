//! Differential tests for parallel execution: threaded SM execution
//! and the bench job pool must be *bit-identical* to sequential runs
//! — same statistics, same memories, same Chrome trace JSON, same
//! table rows.

use rfv_bench::figures;
use rfv_bench::harness::compile_full;
use rfv_bench::pool;
use rfv_sim::{simulate_traced_with_init, simulate_with_init, SimConfig, SimError};
use rfv_trace::TraceEvent;
use rfv_workloads::{suite, synth, PaperGeometry, SynthParams, Workload};

fn chrome_json(events: &[TraceEvent]) -> String {
    let out = rfv_trace::chrome::write_trace(Vec::new(), events).expect("in-memory write");
    String::from_utf8(out).expect("chrome trace is utf-8")
}

/// A multi-CTA synthetic workload that keeps several SMs busy.
fn multi_cta_workload() -> Workload {
    let p = SynthParams {
        regs: 24,
        loop_trips: 6,
        divergent_loop: true,
        diamond: true,
        mem_ops: 2,
        ctas: 12,
        threads_per_cta: 128,
        conc_ctas: 2,
    };
    Workload {
        paper: PaperGeometry {
            name: "synth-multi-cta",
            ctas: p.ctas,
            threads_per_cta: p.threads_per_cta,
            regs_per_kernel: 24,
            conc_ctas: p.conc_ctas,
        },
        kernel: synth(p),
    }
}

fn init_words() -> Vec<(u64, u32)> {
    (0..256).map(|i| (i * 4, (i * 31) as u32)).collect()
}

/// The tentpole guarantee: a 4-SM run with SMs sharded across worker
/// threads produces exactly the statistics, memories, trace events,
/// and Chrome JSON of the sequential run.
#[test]
fn parallel_sms_bit_identical_to_sequential() {
    for w in [multi_cta_workload(), suite::vectoradd()] {
        let ck = compile_full(&w);
        let mut seq_cfg = SimConfig::baseline_full();
        seq_cfg.num_sms = 4;
        seq_cfg.sm_jobs = Some(1);
        let mut par_cfg = seq_cfg;
        par_cfg.sm_jobs = Some(4);
        let init = init_words();

        let seq = simulate_traced_with_init(&ck, &seq_cfg, &init, 1 << 20).unwrap();
        let par = simulate_traced_with_init(&ck, &par_cfg, &init, 1 << 20).unwrap();

        assert_eq!(seq.result.cycles, par.result.cycles, "{}", w.name());
        assert_eq!(seq.result.per_sm, par.result.per_sm, "{}", w.name());
        assert_eq!(seq.result.memories, par.result.memories, "{}", w.name());
        assert!(!seq.events.is_empty(), "{} must trace events", w.name());
        assert_eq!(seq.events, par.events, "{}", w.name());
        assert_eq!(
            chrome_json(&seq.events),
            chrome_json(&par.events),
            "{} Chrome JSON must be byte-identical",
            w.name()
        );
    }
}

/// Untraced runs go through the same sharded path; check them too.
#[test]
fn untraced_parallel_matches_sequential() {
    let w = multi_cta_workload();
    let ck = compile_full(&w);
    let mut seq_cfg = SimConfig::gpu_shrink(50);
    seq_cfg.num_sms = 4;
    seq_cfg.sm_jobs = Some(1);
    let mut par_cfg = seq_cfg;
    par_cfg.sm_jobs = Some(4);
    let init = init_words();
    let seq = simulate_with_init(&ck, &seq_cfg, &init).unwrap();
    let par = simulate_with_init(&ck, &par_cfg, &init).unwrap();
    assert_eq!(seq.cycles, par.cycles);
    assert_eq!(seq.per_sm, par.per_sm);
    assert_eq!(seq.memories, par.memories);
}

/// A zero-SM configuration must be rejected with a proper error at
/// simulation entry, not panic deep in CTA distribution or reporting.
#[test]
fn zero_sm_config_is_a_bad_config_error() {
    let w = suite::vectoradd();
    let ck = compile_full(&w);
    let mut cfg = SimConfig::baseline_full();
    cfg.num_sms = 0;
    match simulate_with_init(&ck, &cfg, &[]) {
        Err(SimError::BadConfig(msg)) => {
            assert!(msg.contains("positive"), "unexpected message: {msg}")
        }
        other => panic!("expected BadConfig, got {other:?}"),
    }
    let mut cfg = SimConfig::baseline_full();
    cfg.sm_jobs = Some(0);
    assert!(matches!(
        simulate_with_init(&ck, &cfg, &[]),
        Err(SimError::BadConfig(_))
    ));
}

/// Worker threads are spawned once into the process-wide pool and
/// reused: repeated multi-SM parallel runs must not grow the process
/// thread count (per-run thread churn was the old behaviour).
#[test]
fn repeated_parallel_runs_keep_a_flat_thread_count() {
    // counts live `rfv-pool-*` workers via procfs, so the assertion is
    // immune to the test harness's own thread churn
    fn pool_thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .expect("procfs")
            .filter_map(|t| {
                let comm = t.ok()?.path().join("comm");
                std::fs::read_to_string(comm).ok()
            })
            .filter(|name| name.starts_with("rfv-pool"))
            .count()
    }

    let w = multi_cta_workload();
    let ck = compile_full(&w);
    let mut cfg = SimConfig::baseline_full();
    cfg.num_sms = 4;
    cfg.sm_jobs = Some(4);
    let init = init_words();

    // warm-up: first parallel run populates the persistent pool
    let first = simulate_with_init(&ck, &cfg, &init).unwrap();
    let warm = pool_thread_count();
    assert!(warm > 0, "parallel run must have spawned pool workers");
    for _ in 0..8 {
        let again = simulate_with_init(&ck, &cfg, &init).unwrap();
        assert_eq!(first.per_sm, again.per_sm, "reruns must be deterministic");
        let now = pool_thread_count();
        assert_eq!(
            now, warm,
            "pool thread count grew from {warm} to {now}: workers are not being reused"
        );
    }
}

/// The bench job pool must not change any table row: `fig10` (which
/// feeds the figures binary and its CSVs) is replayed serially and
/// with four workers.
#[test]
fn job_pool_rows_identical_across_job_counts() {
    let ws = vec![suite::vectoradd(), suite::reduction()];
    pool::set_jobs(1);
    let serial = figures::fig10(&ws);
    pool::set_jobs(4);
    let parallel = figures::fig10(&ws);
    pool::set_jobs(1);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name, "row order must be stable");
        assert_eq!(s.alloc, p.alloc);
        assert_eq!(s.peak_live, p.peak_live);
        assert_eq!(s.reduction_pct.to_bits(), p.reduction_pct.to_bits());
    }
}
