//! Fault-injection differential suite: seeded faults perturbing the
//! release machinery must either be *detected* by the online sanitizer
//! (`SanitizeLevel::Check` → `SimError::Unsound`) or *recovered* from
//! (`SanitizeLevel::Recover` → the offending CTA is quarantined and
//! every other CTA's outputs match the fault-free run). With the
//! sanitizer off and no faults planned, the simulator must behave
//! bit-identically to one without either subsystem.

use rfv_compiler::{compile, CompileOptions, CompiledKernel};
use rfv_sim::{
    simulate_traced, FaultKind, FaultPlan, GlobalMemory, SanitizeLevel, SimConfig, SimError,
    TracedRun,
};
use rfv_trace::TraceKind;
use rfv_workloads::{synth, SynthParams};

const THREADS_PER_CTA: u32 = 64;
const CTAS: u32 = 4;
const OUT_BASE: u64 = 0x0030_0000;

/// A straight-line workload (no divergence) whose every thread stores
/// one word to a disjoint address, so per-CTA output regions are
/// independent and a quarantined CTA never perturbs another's words.
fn workload() -> CompiledKernel {
    let kernel = synth(SynthParams {
        regs: 16,
        loop_trips: 0,
        divergent_loop: false,
        diamond: false,
        mem_ops: 1,
        ctas: CTAS,
        threads_per_cta: THREADS_PER_CTA,
        conc_ctas: 2,
    });
    compile(&kernel, &CompileOptions::default()).expect("synth kernels compile")
}

fn cta_outputs(mem: &GlobalMemory, cta: u32) -> Vec<u32> {
    (0..THREADS_PER_CTA)
        .map(|t| mem.peek_word(OUT_BASE + 4 * u64::from(cta * THREADS_PER_CTA + t)))
        .collect()
}

fn run_traced(config: &SimConfig) -> Result<TracedRun, SimError> {
    simulate_traced(&workload(), config, 1 << 14)
}

#[test]
fn off_mode_is_deterministic_and_check_is_purely_observational() {
    // two sanitizer-off runs are bit-identical (stats, memories, and
    // the full structured trace), and a fault-free Check run — the
    // sanitizer observing but never intervening — matches them too
    let off_cfg = SimConfig::baseline_full();
    assert_eq!(off_cfg.sanitize, SanitizeLevel::Off);
    assert!(off_cfg.faults.is_empty());
    let a = run_traced(&off_cfg).expect("fault-free run completes");
    let b = run_traced(&off_cfg).expect("fault-free run completes");
    let mut check_cfg = off_cfg;
    check_cfg.sanitize = SanitizeLevel::Check;
    let c = run_traced(&check_cfg).expect("fault-free Check run completes");
    for other in [&b, &c] {
        assert_eq!(a.result.per_sm, other.result.per_sm);
        assert_eq!(a.result.memories, other.result.memories);
        assert_eq!(a.events, other.events);
    }
    // ... down to the serialized Chrome trace
    let chrome = |r: &TracedRun| {
        let buf = rfv_trace::chrome::write_trace(Vec::new(), &r.events).expect("in-memory write");
        String::from_utf8(buf).expect("valid UTF-8")
    };
    assert_eq!(chrome(&a), chrome(&b));
    assert_eq!(chrome(&a), chrome(&c));
    assert_eq!(a.result.sm0().faults_injected, 0);
    assert_eq!(a.result.sm0().sanitizer_detections, 0);
    assert_eq!(c.result.sm0().sanitizer_detections, 0);
}

#[test]
fn premature_release_detected_or_recovered_across_seeds() {
    let baseline = run_traced(&SimConfig::baseline_full()).expect("baseline completes");
    let base_mem = &baseline.result.memories[0];
    for seed in 0..10u64 {
        let plan = FaultPlan::single(FaultKind::PrematureRelease, 2, seed);

        // Check: every corrupting fault must surface as Unsound; a
        // fault that happened to be benign (released register rewritten
        // before any use) must leave outputs bit-identical
        let mut check_cfg = SimConfig::baseline_full();
        check_cfg.sanitize = SanitizeLevel::Check;
        check_cfg.faults = plan;
        match run_traced(&check_cfg) {
            Err(SimError::Unsound { .. }) => {}
            Err(e) => panic!("seed {seed}: Check failed with a non-sanitizer error: {e}"),
            Ok(run) => {
                for cta in 0..CTAS {
                    assert_eq!(
                        cta_outputs(&run.result.memories[0], cta),
                        cta_outputs(base_mem, cta),
                        "seed {seed}: undetected fault corrupted CTA {cta}"
                    );
                }
            }
        }

        // Recover: the kernel must complete, and every CTA that was
        // not quarantined must produce the fault-free outputs
        let mut rec_cfg = SimConfig::baseline_full();
        rec_cfg.sanitize = SanitizeLevel::Recover;
        rec_cfg.faults = plan;
        let rec = run_traced(&rec_cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: Recover must complete, got: {e}"));
        let quarantined: Vec<u32> = rec
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Quarantine { cta, .. } => Some(cta),
                _ => None,
            })
            .collect();
        let s = rec.result.sm0();
        assert_eq!(s.quarantined_ctas, quarantined.len() as u64, "seed {seed}");
        if !quarantined.is_empty() {
            assert!(s.sanitizer_detections > 0, "seed {seed}");
            assert!(s.quarantined_warps > 0, "seed {seed}");
        }
        assert_eq!(
            s.ctas_completed + s.quarantined_ctas,
            u64::from(CTAS),
            "seed {seed}: every CTA either completes or is quarantined"
        );
        for cta in 0..CTAS {
            if quarantined.contains(&cta) {
                continue;
            }
            assert_eq!(
                cta_outputs(&rec.result.memories[0], cta),
                cta_outputs(base_mem, cta),
                "seed {seed}: non-quarantined CTA {cta} diverged from the fault-free run"
            );
        }
    }
}

#[test]
fn every_fault_kind_is_survivable_under_recover() {
    // a kitchen-sink plan across seeds: Recover must always bring the
    // kernel to completion (no panic, no watchdog, no deadlock), and
    // Check must either finish or report structured unsoundness
    for seed in 0..8u64 {
        let plan = FaultPlan::parse("all:2", seed).expect("spec parses");
        let mut rec_cfg = SimConfig::baseline_full();
        rec_cfg.sanitize = SanitizeLevel::Recover;
        rec_cfg.faults = plan;
        rec_cfg.max_cycles = 5_000_000;
        let rec = run_traced(&rec_cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: Recover must survive all kinds, got: {e}"));
        let s = rec.result.sm0();
        assert_eq!(s.ctas_completed + s.quarantined_ctas, u64::from(CTAS));

        let mut check_cfg = rec_cfg;
        check_cfg.sanitize = SanitizeLevel::Check;
        match run_traced(&check_cfg) {
            Ok(_) | Err(SimError::Unsound { .. }) => {}
            Err(e) => panic!("seed {seed}: Check died with a non-sanitizer error: {e}"),
        }
    }
}

#[test]
fn spill_loss_under_shrink_is_detected_or_recovered() {
    // SpillWriteLoss only has sites when GPU-shrink actually spills;
    // squeeze the file hard enough to force swap-outs
    let kernel = synth(SynthParams {
        regs: 48,
        loop_trips: 0,
        divergent_loop: false,
        diamond: false,
        mem_ops: 2,
        ctas: 2,
        threads_per_cta: 256,
        conc_ctas: 2,
    });
    let ck = compile(&kernel, &CompileOptions::default()).expect("synth kernels compile");
    let mut base_cfg = SimConfig::gpu_shrink(75);
    base_cfg.max_cycles = 40_000_000;
    let base = simulate_traced(&ck, &base_cfg, 0).expect("shrink baseline completes");
    assert!(base.result.sm0().swap_outs > 0, "workload must spill");
    for seed in 0..4u64 {
        let mut cfg = base_cfg;
        cfg.faults = FaultPlan::single(FaultKind::SpillWriteLoss, 1, seed);
        cfg.sanitize = SanitizeLevel::Recover;
        let rec = simulate_traced(&ck, &cfg, 1 << 14)
            .unwrap_or_else(|e| panic!("seed {seed}: Recover must complete, got: {e}"));
        let s = rec.result.sm0();
        assert_eq!(s.ctas_completed + s.quarantined_ctas, 2, "seed {seed}");
        if s.faults_injected > 0 {
            // a lost spill write is always unsound once restored
            assert!(
                s.sanitizer_detections > 0,
                "seed {seed}: lost spill write went unnoticed"
            );
        }
    }
}
