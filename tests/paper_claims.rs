//! The paper's headline claims, asserted end-to-end through the same
//! figure-regeneration code the `figures` binary uses (on subsets
//! where the full suite would be slow). EXPERIMENTS.md's qualitative
//! statements are pinned here so they cannot silently rot.

use rfv_bench::figures;
use rfv_workloads::suite;

fn by_names(names: &[&str]) -> Vec<rfv_workloads::Workload> {
    names
        .iter()
        .map(|n| suite::by_name(n).expect("known benchmark"))
        .collect()
}

/// §8.1/Figure 11(a): GPU-shrink is near-free while compiler-forced
/// spilling is catastrophic on register-fat kernels.
#[test]
fn gpu_shrink_beats_compiler_spill_where_spilling_is_needed() {
    let rows = figures::fig11a(&by_names(&["MatrixMul", "BackProp", "Heartwall", "NN"]));
    for r in &rows {
        assert!(r.spilled, "{} should need spilling at 64 KB", r.name);
        assert!(
            r.spill_increase_pct() > 25.0,
            "{}: compiler spill must hurt badly, got {:+.1}%",
            r.name,
            r.spill_increase_pct()
        );
        assert!(
            r.shrink_increase_pct() < 10.0,
            "{}: GPU-shrink must stay near-free, got {:+.1}%",
            r.name,
            r.shrink_increase_pct()
        );
        assert!(
            r.shrink_cycles < r.spill_cycles,
            "{}: GPU-shrink must beat compiler spill",
            r.name
        );
    }
}

/// Figure 11(a): benchmarks whose demand fits 64 KB pay nothing for
/// the compiler-spill baseline (the paper's zero-overhead set).
#[test]
fn fitting_benchmarks_need_no_spill() {
    let rows = figures::fig11a(&by_names(&["VectorAdd", "BFS", "Gaussian", "LIB"]));
    for r in &rows {
        assert!(!r.spilled, "{} fits a 64 KB file per Table 1", r.name);
        assert_eq!(r.spill_cycles, r.base_cycles, "{}", r.name);
    }
}

/// Figure 10: virtualization reduces register allocation, and the
/// short VectorAdd kernel saves the least (the paper's observation).
#[test]
fn allocation_reduction_shape() {
    let rows = figures::fig10(&by_names(&[
        "VectorAdd",
        "BlackScholes",
        "LIB",
        "Heartwall",
    ]));
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .expect("row present")
            .reduction_pct
    };
    for r in &rows {
        assert!(r.reduction_pct > 0.0, "{} must save something", r.name);
    }
    assert!(
        get("VectorAdd") < get("BlackScholes") && get("VectorAdd") < get("LIB"),
        "the short kernel saves least: {rows:?}"
    );
}

/// Figure 12: the 64 KB + power-gating configuration saves a large
/// fraction of register-file energy versus the conventional file, and
/// power gating composes with under-provisioning.
#[test]
fn energy_savings_compose() {
    let rows = figures::fig12(&by_names(&["MatrixMul", "VectorAdd", "LIB"]));
    for r in &rows {
        let (full_pg, shrink, shrink_pg) = r.normalized();
        assert!(full_pg < 1.0, "{}: 128KB+PG must save energy", r.name);
        assert!(shrink < 1.0, "{}: halving must save energy", r.name);
        assert!(
            shrink_pg < full_pg && shrink_pg < shrink,
            "{}: shrink+PG must beat either alone ({full_pg:.3}, {shrink:.3}, {shrink_pg:.3})",
            r.name
        );
        assert!(
            shrink_pg < 0.8,
            "{}: combined saving must be substantial, got {shrink_pg:.3}",
            r.name
        );
    }
}

/// Figure 13: the ten-entry release flag cache eliminates most of the
/// metadata decode overhead.
#[test]
fn flag_cache_removes_decode_overhead() {
    let rows = figures::fig13(&by_names(&["MatrixMul", "BackProp"]));
    for r in &rows {
        assert!(
            r.dynamic_pct[4] < r.dynamic_pct[0] / 2.0,
            "{}: Dyn-10 ({:.2}%) must be far below Dyn-0 ({:.2}%)",
            r.name,
            r.dynamic_pct[4],
            r.dynamic_pct[0]
        );
        assert!(r.static_pct < 30.0, "{}", r.name);
    }
}

/// Figure 14: the paper's renaming-table arithmetic — only Heartwall
/// and MUM exceed the 1 KB budget, with the quoted exemption counts.
#[test]
fn renaming_table_budget_matches_paper_quotes() {
    let rows = figures::fig14(&by_names(&["Heartwall", "MUM", "MatrixMul"]));
    let get = |name: &str| rows.iter().find(|r| r.name == name).expect("row");
    assert!(get("Heartwall").unconstrained_bytes > 1024);
    assert_eq!(get("Heartwall").exempted, 4, "paper: 4 of 29");
    assert!(get("MUM").unconstrained_bytes > 1024);
    assert_eq!(get("MUM").exempted, 2, "paper: 2 of 19");
    assert!(get("MatrixMul").unconstrained_bytes <= 1024);
    assert_eq!(get("MatrixMul").exempted, 0);
    for r in &rows {
        assert!(
            r.normalized_saving > 0.85,
            "{}: the 1 KB budget must cost little saving",
            r.name
        );
    }
}

/// Figure 15: the hardware-only scheme [46] never matches the
/// compiler-assisted scheme on either metric.
#[test]
fn hardware_only_is_strictly_weaker() {
    let rows = figures::fig15(&by_names(&["MatrixMul", "Heartwall", "LIB"]));
    for r in &rows {
        assert!(
            r.alloc_reduction_ratio <= 1.0 + 1e-9,
            "{}: [46] alloc ratio {} > 1",
            r.name,
            r.alloc_reduction_ratio
        );
        assert!(
            r.static_reduction_ratio <= 1.0 + 1e-9,
            "{}: [46] static ratio {} > 1",
            r.name,
            r.static_reduction_ratio
        );
    }
    // and on at least one benchmark the gap is the paper's ~2x
    assert!(
        rows.iter().any(|r| r.static_reduction_ratio < 0.6),
        "somewhere the compiler scheme must save ~2x the static power: {rows:?}"
    );
}

/// Figure 7's published anchors and Figure 9's FinFET-reset shape.
#[test]
fn power_model_anchors() {
    let half = rfv_power::power_at(50.0);
    assert!((half.dynamic_pct - 80.0).abs() < 1e-9);
    assert!((half.total_pct - 70.0).abs() < 1e-9);
    use rfv_power::TechNode;
    assert!(TechNode::Planar22.leakage_factor() > TechNode::Planar40.leakage_factor());
    assert!(TechNode::FinFet22.leakage_factor() < TechNode::Planar22.leakage_factor());
    assert!(TechNode::FinFet10.leakage_factor() > TechNode::FinFet22.leakage_factor());
}

/// Figure 1: live registers sit well below the architected allocation
/// for the plotted applications.
#[test]
fn live_fraction_sits_below_allocation() {
    for name in ["MatrixMul", "LPS", "BackProp"] {
        let w = suite::by_name(name).unwrap();
        let series = figures::fig1(&w);
        let mean = figures::mean(&series, |&(_, p)| p);
        assert!(
            mean > 5.0 && mean < 85.0,
            "{name}: mean live fraction {mean:.0}% out of the paper's band"
        );
    }
}

/// Figure 2: the three MatrixMul register archetypes (whole-kernel,
/// loop-lived, epilogue-only).
#[test]
fn lifetime_archetypes_reproduce() {
    let traces = figures::fig2();
    let lifetimes = |reg: u8| {
        traces
            .iter()
            .find(|(r, _)| *r == reg)
            .map(|(_, iv)| iv.len())
            .expect("traced register")
    };
    assert!(lifetimes(1) <= 4, "r1 lives once per CTA the slot runs");
    assert!(lifetimes(5) > 50, "r5 cycles through many loop lifetimes");
    assert!(lifetimes(13) <= 4, "r13 only lives in the epilogue");
}

/// Figure 8: the pack-first allocator consolidates live registers
/// into fewer subarrays than conventional allocation powers.
#[test]
fn subarray_packing_consolidates() {
    let w = suite::matrixmul();
    let ((_, conv), (_, virt)) = figures::fig8(&w);
    let on = |occ: &[usize]| occ.iter().filter(|&&o| o > 0).count();
    assert!(
        on(&virt) < on(&conv),
        "virtualized must power fewer subarrays: {} vs {}",
        on(&virt),
        on(&conv)
    );
}

/// Figure 11(b): subarray wakeup latency is noise even at 10 cycles.
#[test]
fn wakeup_latency_is_negligible() {
    let pts = figures::fig11b(&by_names(&["VectorAdd", "LPS"]));
    for (wake, ratio) in pts {
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "wakeup {wake}: normalized cycles {ratio:.4} out of the paper's <2% band"
        );
    }
}
