//! GPU-shrink integration: under-provisioned register files, CTA
//! throttling, deadlock freedom, and the emergency spill fallback.

use rfv_bench::harness::{compile_full, run, Machine};
use rfv_sim::SimConfig;
use rfv_workloads::{suite, synth, SynthParams};

#[test]
fn shrink_40_and_30_also_work() {
    // §9.2: "GPU-shrink-40% and GPU-shrink-30%... did not have any
    // impact on the execution latency" (beyond the 50% results)
    let w = suite::backprop();
    let ck = compile_full(&w);
    let base = run(&ck, &SimConfig::baseline_full());
    for pct in [30usize, 40] {
        let r = run(&ck, &SimConfig::gpu_shrink(pct));
        let overhead = 100.0 * (r.cycles as f64 - base.cycles as f64) / base.cycles as f64;
        assert!(
            overhead < 10.0,
            "GPU-shrink-{pct}% overhead {overhead:.2}% out of band"
        );
    }
}

#[test]
fn throttle_engages_under_pressure() {
    // with the compiler's max-held budget, the half-sized file absorbs
    // Heartwall without restriction; squeezing to a quarter must
    // engage the throttle and still complete every CTA
    let w = suite::heartwall(); // 29 regs x 16 warps x 2 CTAs = 928 arch
    let half = Machine::Shrink64.run(&w);
    assert_eq!(
        half.sm0().ctas_completed,
        u64::from(w.kernel.launch().grid_ctas())
    );
    let ck = compile_full(&w);
    let quarter = run(&ck, &SimConfig::gpu_shrink(75));
    let s = quarter.sm0();
    assert_eq!(s.ctas_completed, u64::from(w.kernel.launch().grid_ctas()));
    assert!(
        s.no_reg_stalls > 0 || s.throttle_restricted_cycles > 0,
        "Heartwall on a quarter-sized file should feel register pressure"
    );
}

#[test]
fn extreme_shrink_still_makes_progress() {
    // far below the paper's 50%: a 75%-shrunk file (256 registers)
    // must still run a demanding kernel without deadlock, via
    // throttling + the spill fallback
    let w = suite::heartwall();
    let ck = compile_full(&w);
    let mut cfg = SimConfig::gpu_shrink(75);
    cfg.max_cycles = 20_000_000;
    let r = run(&ck, &cfg);
    assert_eq!(
        r.sm0().ctas_completed,
        u64::from(w.kernel.launch().grid_ctas())
    );
}

#[test]
fn single_fat_cta_corner_case_uses_spill_fallback() {
    // §8.1's rare corner case: a CTA whose *live* register demand
    // exceeds the whole physical file. The straight-line generator
    // kernel seeds all 48 registers up front and consumes them
    // gradually, so every register is releasable (all renamed, no
    // static demand) yet ~48 are transiently live per warp:
    // 8 warps x 48 = 384 live registers against a 256-register
    // (75%-shrunk) file — only the scheduler spill fallback can make
    // progress.
    let kernel = synth(SynthParams {
        regs: 48,
        loop_trips: 0,
        divergent_loop: false,
        diamond: false,
        mem_ops: 2,
        ctas: 2,
        threads_per_cta: 256,
        conc_ctas: 2,
    });
    let w = rfv_workloads::Workload {
        paper: rfv_workloads::PaperGeometry {
            name: "fat-cta",
            ctas: 2,
            threads_per_cta: 256,
            regs_per_kernel: 48,
            conc_ctas: 2,
        },
        kernel,
    };
    let ck = compile_full(&w);
    let mut cfg = SimConfig::gpu_shrink(75);
    cfg.max_cycles = 40_000_000;
    let r = run(&ck, &cfg);
    assert_eq!(r.sm0().ctas_completed, 2);
    // outputs still correct versus the conventional file
    let base = Machine::Conventional.run(&w);
    for off in (0..2048u64).step_by(4) {
        assert_eq!(
            base.memories[0].peek_word(0x0030_0000 + off),
            r.memories[0].peek_word(0x0030_0000 + off),
            "corner-case output mismatch at {off:#x}"
        );
    }
}

#[test]
fn impossible_launch_is_reported_not_hung() {
    // one CTA statically demanding more than the whole file on the
    // *conventional* (all-static) machine must fail fast
    let kernel = synth(SynthParams {
        regs: 63,
        loop_trips: 0,
        divergent_loop: false,
        diamond: false,
        mem_ops: 0,
        ctas: 1,
        threads_per_cta: 1024, // 32 warps x 63 regs = 2016 > 512
        conc_ctas: 1,
    });
    let w = rfv_workloads::Workload {
        paper: rfv_workloads::PaperGeometry {
            name: "impossible",
            ctas: 1,
            threads_per_cta: 1024,
            regs_per_kernel: 63,
            conc_ctas: 1,
        },
        kernel,
    };
    let ck = rfv_bench::harness::compile_plain(&w);
    let mut cfg = SimConfig::conventional();
    cfg.regfile.phys_regs = 512;
    let err = rfv_sim::simulate(&ck, &cfg).unwrap_err();
    assert!(matches!(err, rfv_sim::SimError::LaunchImpossible { .. }));
}

#[test]
fn bank_fallback_ablation_trades_stalls_for_conflicts() {
    // disabling bank preservation lets an allocation escape a full
    // bank (fewer *blocking* stalls at the same pressure point) at the
    // price of operand-collector conflicts; both configurations must
    // complete, and the relaxed one must never see a *blocked SM*
    // (stall growth far beyond strict indicates a livelock regression)
    let w = suite::mum();
    let ck = compile_full(&w);
    let strict = run(&ck, &SimConfig::gpu_shrink(50));
    let mut relaxed_cfg = SimConfig::gpu_shrink(50);
    relaxed_cfg.regfile.bank_preserving = false;
    let relaxed = run(&ck, &relaxed_cfg);
    assert_eq!(
        relaxed.sm0().ctas_completed,
        u64::from(w.kernel.launch().grid_ctas())
    );
    assert!(
        relaxed.sm0().no_reg_stalls <= strict.sm0().no_reg_stalls.max(100) * 4,
        "free-bank stalls exploded: {} vs strict {}",
        relaxed.sm0().no_reg_stalls,
        strict.sm0().no_reg_stalls
    );
}

#[test]
fn barrier_kernels_survive_extreme_shrink() {
    // regression: a swapped-out warp must never deadlock its CTA's
    // barrier (victim selection avoids mid-barrier CTAs, swap-in needs
    // no extra headroom, and the throttle never restricts to a CTA
    // with nothing runnable)
    for name in ["ScalarProd", "BackProp", "Reduction", "MatrixMul"] {
        let w = suite::by_name(name).unwrap();
        let ck = compile_full(&w);
        let mut cfg = SimConfig::gpu_shrink(75);
        cfg.max_cycles = 30_000_000;
        let r = run(&ck, &cfg);
        assert_eq!(
            r.sm0().ctas_completed,
            u64::from(w.kernel.launch().grid_ctas()),
            "{name} must complete on a quarter-sized file"
        );
    }
}
