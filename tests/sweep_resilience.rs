//! Sweep-resilience tests for the `figures` driver: a panicking cell
//! must not take down the sweep (retries with backoff, then a
//! `FAILED(...)` cell and a degraded exit code), the journal must let
//! a rerun pick up exactly where the crash left off, and the final
//! output after recovery must be byte-identical to a clean sweep.

use std::path::PathBuf;
use std::process::{Command, Output};

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfv-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn figures")
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// A rigged panic in one cell leaves the others complete, is retried
/// with backoff, renders as `FAILED(...)`, exits degraded (4), and a
/// rerun over the same journal recovers byte-identically to a sweep
/// that never failed.
#[test]
fn rigged_panic_degrades_then_recovers_byte_identically() {
    let dir = scratch("rigged");
    let journal = dir.join("journal");

    // table2 runs no simulation; fig2 runs MatrixMul once — rig it
    let out = run(figures()
        .args(["table2", "fig2", "--retries", "1", "--journal"])
        .arg(&journal)
        .env("RFV_RIG_PANIC", "MatrixMul"));
    assert_eq!(out.status.code(), Some(4), "degraded sweep must exit 4");
    let stdout = text(&out.stdout);
    let stderr = text(&out.stderr);
    assert!(stdout.contains("Table 2"), "healthy cell missing: {stdout}");
    assert!(
        stdout.contains("FAILED(") && stdout.contains("rigged panic"),
        "failed cell not rendered: {stdout}"
    );
    assert!(
        stderr.contains("retrying in 50ms"),
        "no backoff retry on stderr: {stderr}"
    );

    // the journal recorded the healthy cell only
    let manifest = std::fs::read_to_string(journal.join("manifest")).expect("manifest");
    assert!(manifest.contains("ok table2"), "manifest: {manifest}");
    assert!(!manifest.contains("ok fig2"), "manifest: {manifest}");

    // rerun without the rig: replays table2, computes fig2, exits clean
    let recovered = run(figures()
        .args(["table2", "fig2", "--journal"])
        .arg(&journal));
    assert!(
        recovered.status.success(),
        "recovery run: {}",
        text(&recovered.stderr)
    );

    // and the recovered output is byte-identical to a clean sweep
    let clean = run(figures().args(["table2", "fig2"]));
    assert!(clean.status.success());
    assert_eq!(
        recovered.stdout, clean.stdout,
        "journal replay diverged from a clean sweep"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A second sweep over a completed journal is a pure replay: still
/// byte-identical, and the manifest keeps exactly one line per cell.
#[test]
fn completed_journal_replays_verbatim() {
    let dir = scratch("replay");
    let journal = dir.join("journal");

    let first = run(figures().args(["table1", "--journal"]).arg(&journal));
    assert!(first.status.success(), "{}", text(&first.stderr));
    let second = run(figures().args(["table1", "--journal"]).arg(&journal));
    assert!(second.status.success(), "{}", text(&second.stderr));
    assert_eq!(first.stdout, second.stdout, "replay diverged");

    let manifest = std::fs::read_to_string(journal.join("manifest")).expect("manifest");
    assert_eq!(
        manifest.matches("ok table1").count(),
        1,
        "replay must not re-append manifest lines: {manifest}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--csv` failures are reported errors, not panics: an uncreatable
/// directory is a usage error (exit 2) and an unwritable file inside
/// the sweep degrades that cell (exit 4) instead of aborting.
#[test]
fn csv_write_failures_are_reported_not_panics() {
    let dir = scratch("csv");

    // a path that cannot be a directory (component is a regular file)
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a dir").expect("write blocker");
    let out = run(figures().args(["fig7", "--csv"]).arg(blocker.join("sub")));
    assert_eq!(
        out.status.code(),
        Some(2),
        "uncreatable --csv dir: usage error"
    );
    assert!(
        text(&out.stderr).contains("error:"),
        "{}",
        text(&out.stderr)
    );

    // the directory exists but the target file name is taken by a
    // directory, so the write itself fails -> FAILED cell, exit 4
    let csv_dir = dir.join("csv");
    std::fs::create_dir_all(csv_dir.join("fig7.csv")).expect("occupy csv path");
    let out = run(figures().args(["fig7", "--csv"]).arg(&csv_dir));
    assert_eq!(out.status.code(), Some(4), "unwritable csv file: degraded");
    assert!(
        text(&out.stdout).contains("FAILED(cannot write"),
        "{}",
        text(&out.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Unknown figures and malformed flags stay usage errors (exit 2).
#[test]
fn sweep_flag_misuse_is_a_usage_error() {
    for args in [
        vec!["nosuchfigure"],
        vec!["table1", "--retries", "many"],
        vec!["table1", "--journal"],
    ] {
        let out = run(figures().args(&args));
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
    }
}
