//! Property-based tests: over randomly-shaped synthetic kernels,
//! register virtualization must stay transparent and its invariants
//! must hold.

use proptest::prelude::*;

use rfv_bench::harness::{compile_full, compile_plain, run, Machine};
use rfv_sim::SimConfig;
use rfv_workloads::{synth, SynthParams};

fn arb_params() -> impl Strategy<Value = SynthParams> {
    (
        6u8..=40,      // regs
        0u32..12,      // loop trips
        any::<bool>(), // divergent loop
        any::<bool>(), // diamond
        0u8..=3,       // mem ops
        1u32..=6,      // ctas
        prop_oneof![Just(32u32), Just(64), Just(96), Just(128), Just(256)],
        1u32..=4, // conc ctas
    )
        .prop_map(
            |(regs, loop_trips, divergent_loop, diamond, mem_ops, ctas, threads, conc)| {
                SynthParams {
                    regs,
                    loop_trips,
                    divergent_loop,
                    diamond,
                    mem_ops,
                    ctas,
                    threads_per_cta: threads,
                    conc_ctas: conc,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline safety property: for any kernel shape, outputs
    /// under full virtualization and GPU-shrink are bit-identical to
    /// the conventional GPU. Functional values live in physical
    /// registers, so a premature release would corrupt this.
    #[test]
    fn outputs_identical_across_policies(p in arb_params()) {
        let kernel = synth(p);
        let w = wrap(kernel);
        let reference = Machine::Conventional.run(&w);
        for m in [Machine::Full128, Machine::Shrink64, Machine::HardwareOnly] {
            let got = m.run(&w);
            for off in (0..4096u64).step_by(4) {
                prop_assert_eq!(
                    reference.memories[0].peek_word(0x0030_0000 + off),
                    got.memories[0].peek_word(0x0030_0000 + off),
                    "policy {:?} diverged at {:#x} for {:?}", m, off, p
                );
            }
        }
    }

    /// Virtualization never *increases* peak physical register demand
    /// beyond the conventional allocation.
    #[test]
    fn peak_demand_never_exceeds_conventional(p in arb_params()) {
        let kernel = synth(p);
        let w = wrap(kernel);
        let base = Machine::Conventional.run(&w);
        let full = Machine::Full128.run(&w);
        prop_assert!(
            full.sm0().regfile.peak_live <= base.sm0().regfile.peak_live,
            "full {} > conventional {}",
            full.sm0().regfile.peak_live,
            base.sm0().regfile.peak_live
        );
    }

    /// Renaming-table updates balance: every allocation is eventually
    /// released (early or at warp retirement), leaving no mappings.
    #[test]
    fn no_leaked_mappings_after_completion(p in arb_params()) {
        let kernel = synth(p);
        let w = wrap(kernel);
        let r = Machine::Full128.run(&w);
        let s = r.sm0();
        // all CTAs completed and every sample at the end shows zero
        // live registers (the run loop only exits when work is done)
        prop_assert_eq!(s.ctas_completed, u64::from(w.kernel.launch().grid_ctas()));
        prop_assert!(s.regfile.allocs >= s.regfile.releases);
    }

    /// The flag cache only reduces decode work, never execution
    /// results; and a bigger cache never decodes more.
    #[test]
    fn flag_cache_is_monotone(p in arb_params()) {
        let kernel = synth(p);
        let compiled = compile_full(&wrap(kernel));
        let mut last = u64::MAX;
        for entries in [0usize, 2, 10] {
            let mut cfg = SimConfig::baseline_full();
            cfg.regfile.flag_cache_entries = entries;
            let r = run(&compiled, &cfg);
            prop_assert!(
                r.sm0().meta_decoded <= last,
                "cache {} decoded {} > smaller cache {}",
                entries, r.sm0().meta_decoded, last
            );
            last = r.sm0().meta_decoded;
        }
    }

    /// The sanitizer raises no false positives: on a fault-free run of
    /// any kernel shape, `SanitizeLevel::Check` must complete without
    /// an `Unsound` error and with zero recorded detections, for every
    /// machine policy (including GPU-shrink's spill/swap traffic).
    #[test]
    fn check_mode_has_zero_false_positives(p in arb_params()) {
        let kernel = synth(p);
        let w = wrap(kernel);
        for m in [Machine::Conventional, Machine::Full128, Machine::Shrink64, Machine::HardwareOnly] {
            let mut cfg = m.config();
            cfg.sanitize = rfv_sim::SanitizeLevel::Check;
            let compiled = m.compile(&w);
            let r = rfv_sim::simulate(&compiled, &cfg);
            match r {
                Ok(res) => prop_assert_eq!(
                    res.sm0().sanitizer_detections, 0,
                    "machine {:?} recorded detections without faults for {:?}", m, p
                ),
                Err(e) => prop_assert!(false, "machine {:?} flagged a fault-free run: {} ({:?})", m, e, p),
            }
        }
    }

    /// A plain (zero-budget) compile embeds no metadata and the
    /// binary still runs correctly.
    #[test]
    fn plain_compile_has_no_metadata(p in arb_params()) {
        let kernel = synth(p);
        let w = wrap(kernel);
        let ck = compile_plain(&w);
        prop_assert_eq!(ck.stats().num_pir, 0);
        prop_assert_eq!(ck.stats().num_pbr, 0);
        prop_assert_eq!(ck.kernel().num_meta_instrs(), 0);
    }
}

fn wrap(kernel: rfv_isa::Kernel) -> rfv_workloads::Workload {
    rfv_workloads::Workload {
        paper: rfv_workloads::PaperGeometry {
            name: "synthetic",
            ctas: kernel.launch().grid_ctas(),
            threads_per_cta: kernel.launch().threads_per_cta(),
            regs_per_kernel: kernel.num_regs(),
            conc_ctas: kernel.launch().max_conc_ctas_per_sm(),
        },
        kernel,
    }
}
